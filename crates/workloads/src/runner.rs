//! The end-to-end scenario runner: drives an [`Engine`] round by round,
//! interleaving workload deltas between rounds, and emits the
//! [`ScenarioReport`] time series.
//!
//! ### Execution shape
//!
//! Each scenario round is **workload → balance → observe**:
//!
//! ```text
//! loads ──apply workload──▶ loads' ──Engine::round──▶ loads'' ──record──▶ …
//!        (in place, front buffer)   (zero-copy ping-pong)    (Φ, totals)
//! ```
//!
//! The workload mutates the caller's load vector in place between engine
//! rounds — the engine's zero-copy double buffering is untouched, no copy
//! is introduced. The Φ trace uses the round's computed statistics when
//! the [`StatsMode`] produced them and the engine's on-demand potential
//! otherwise (the same blocked reduction), so the trace is **bit-identical
//! across stats modes, executors, and thread counts**; workloads are
//! applied by one thread and are seeded-deterministic, extending the
//! workspace's serial ≡ parallel invariant to online scenarios.
//!
//! [`StatsMode`]: dlb_core::engine::StatsMode

use std::collections::VecDeque;

use crate::report::{
    CommTotals, FaultTotals, RoundRecord, ScenarioReport, SteadyBand, StopReason, TelemetryTotals,
};
use crate::scenario::{
    compile_workloads, exec_from_threads, validate_exec, ExecSpec, ProtocolSpec, Scenario, StopSpec,
};
use crate::workload::{ScenarioLoad, Workload, WorkloadCtx};
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::{Engine, LoadPotential, Protocol, StatsMode};
use dlb_core::heterogeneous::HeterogeneousDiffusion;
use dlb_core::init;
use dlb_core::model::{DiscreteRoundStats, RoundStats};
use dlb_dynamics::runner::{DynamicContinuousDiffusion, DynamicDiscreteDiffusion};
use dlb_dynamics::{ChurnSchedule, GraphSequence, ShardChurnSequence, StaticSequence};
use dlb_telemetry::{Phase as SpanPhase, Telemetry, TraceSummary, ENGINE_LANE};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Round statistics the scenario time series can read uniformly:
/// continuous and discrete stats both expose an after-round potential and
/// a total-moved figure as `f64`.
pub trait RoundLike {
    /// The after-round potential as `f64`.
    fn phi_after_f64(&self) -> f64;
    /// Total load/tokens moved over edges this round.
    fn moved_f64(&self) -> f64;
}

impl RoundLike for RoundStats {
    fn phi_after_f64(&self) -> f64 {
        self.phi_after
    }

    fn moved_f64(&self) -> f64 {
        self.total_flow
    }
}

impl RoundLike for DiscreteRoundStats {
    fn phi_after_f64(&self) -> f64 {
        self.phi_hat_after as f64
    }

    fn moved_f64(&self) -> f64 {
        self.total_tokens as f64
    }
}

/// Potential scalars (`f64` Φ, `u128` Φ̂) viewed as `f64` for the report
/// time series. The conversion is deterministic, so trace bit-identity is
/// preserved.
pub trait PhiLike {
    /// The potential as `f64`.
    fn phi_f64(self) -> f64;
}

impl PhiLike for f64 {
    fn phi_f64(self) -> f64 {
        self
    }
}

impl PhiLike for u128 {
    fn phi_f64(self) -> f64 {
        self as f64
    }
}

/// Stable name of a [`StatsMode`] for reports and scenario files.
pub fn stats_mode_name(mode: StatsMode) -> String {
    match mode {
        StatsMode::Full => "full".into(),
        StatsMode::EveryK(k) => format!("every:{k}"),
        StatsMode::PhiOnly => "phionly".into(),
        StatsMode::Off => "off".into(),
    }
}

/// Trailing-window length used for the report's Φ band when the stop
/// condition doesn't define one.
const DEFAULT_BAND_WINDOW: usize = 32;

fn band_of(recent: &VecDeque<f64>) -> SteadyBand {
    if recent.is_empty() {
        return SteadyBand {
            window: 0,
            phi_mean: 0.0,
            phi_min: 0.0,
            phi_max: 0.0,
        };
    }
    let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
    for &phi in recent {
        min = min.min(phi);
        max = max.max(phi);
        sum += phi;
    }
    SteadyBand {
        window: recent.len(),
        phi_mean: sum / recent.len() as f64,
        phi_min: min,
        phi_max: max,
    }
}

/// Drives `engine` through `stop`, applying `workload` between rounds,
/// and collects the full time series. This is the loop behind
/// [`ScenarioRunner`], exposed for callers that build their own engines
/// (benches, ad-hoc experiments).
///
/// The load vector is left in its final state; `name` labels the report.
pub fn run_driven<P>(
    engine: &mut Engine<P>,
    loads: &mut Vec<P::Load>,
    mut workload: Option<&mut dyn Workload<P::Load>>,
    stop: &StopSpec,
    name: &str,
) -> ScenarioReport
where
    P: Protocol,
    P::Load: ScenarioLoad,
    P::Stats: RoundLike,
    <P::Load as LoadPotential>::Phi: PhiLike,
{
    // One handle clone up front: a unit copy when telemetry is off, one
    // Arc increment when armed — either way the round loop borrows freely.
    let tel = engine.telemetry().clone();
    // Shard-resident driving: workers keep their owned loads across
    // rounds, the coordinator routes workload deltas by owner and reads
    // loads back through the session's collect/sync phase. Fault-armed
    // engines stay on the snapshot-based supervised path — recovery
    // re-seeds workers from the coordinator's round-start snapshot,
    // which a resident session by design does not hold.
    let resident = matches!(
        engine.backend(),
        dlb_core::engine::Backend::Message { resident: true, .. }
    ) && engine.faults().is_none();
    if resident {
        engine.resident_begin(loads);
    }
    let mut prev_loads: Vec<P::Load> = Vec::new();
    let mut deltas: Vec<(u32, P::Load)> = Vec::new();
    let ctx = WorkloadCtx {
        initial_total: P::Load::total(loads),
    };
    let initial_total = ctx.initial_total;
    let phi0 = engine.potential(loads).phi_f64();
    let max_rounds = stop.max_rounds();
    let band_window = match *stop {
        StopSpec::SteadyState { window, .. } => window,
        _ => DEFAULT_BAND_WINDOW,
    };

    let mut phi_trace = Vec::with_capacity(max_rounds.min(1 << 20) + 1);
    phi_trace.push(phi0);
    let mut records: Vec<RoundRecord> = Vec::with_capacity(max_rounds.min(1 << 20));
    let mut recent: VecDeque<f64> = VecDeque::with_capacity(band_window + 1);
    let (mut injected_total, mut consumed_total, mut migrated_total) = (0.0f64, 0.0f64, 0.0f64);
    let mut stop_reason = StopReason::RoundBudget;
    let mut comm: Option<CommTotals> = None;

    for round in 1..=max_rounds as u64 {
        let delta = match workload.as_deref_mut() {
            Some(w) => {
                let t0 = tel.start();
                let delta = if resident {
                    // Diff the in-place mutation into sparse per-node
                    // deltas the session routes to their owner shards —
                    // the workers' frames stay authoritative, the
                    // coordinator never resends whole owned slices.
                    prev_loads.clone_from(loads);
                    let delta = w.apply(round, loads, &ctx);
                    deltas.clear();
                    for (i, (before, after)) in prev_loads.iter().zip(loads.iter()).enumerate() {
                        if before != after {
                            deltas.push((i as u32, *after));
                        }
                    }
                    engine.resident_apply(&deltas);
                    delta
                } else {
                    w.apply(round, loads, &ctx)
                };
                tel.record(ENGINE_LANE, round, SpanPhase::WorkloadApply, t0);
                delta
            }
            None => Default::default(),
        };
        let stats = if resident {
            let stats = engine.round_resident();
            // The record needs the post-round loads (imbalance, totals, Φ
            // on stats-off rounds): sync the mirror — one collect on
            // rounds whose stats level didn't already refresh it.
            loads.copy_from_slice(engine.resident_loads());
            stats
        } else {
            engine.round(loads)
        };
        if let Some(c) = engine.comm_metrics() {
            let totals = comm.get_or_insert_with(CommTotals::default);
            totals.messages += c.messages as u64;
            totals.values_sent += c.values_sent as u64;
            totals.halo_bytes += c.halo_bytes as u64;
            totals.max_round_shard_values = totals
                .max_round_shard_values
                .max(c.max_shard_values_sent as u64);
            totals.owned_values_in += c.owned_values_in as u64;
            totals.owned_values_out += c.owned_values_out as u64;
            totals.delta_values += c.delta_values as u64;
            totals.collects += c.collects as u64;
            totals.wire_bytes_out += c.wire_bytes_out as u64;
            totals.wire_bytes_in += c.wire_bytes_in as u64;
        }
        let (phi, moved) = match &stats {
            Some(s) => (s.phi_after_f64(), s.moved_f64()),
            None => (engine.potential(loads).phi_f64(), 0.0),
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in loads.iter() {
            let x = v.to_f64();
            min = min.min(x);
            max = max.max(x);
        }
        let total = P::Load::total(loads);
        injected_total += delta.injected;
        consumed_total += delta.consumed;
        migrated_total += moved;
        phi_trace.push(phi);
        records.push(RoundRecord {
            round,
            injected: delta.injected,
            consumed: delta.consumed,
            migrated: moved,
            phi,
            imbalance: max - min,
            total,
        });
        recent.push_back(phi);
        if recent.len() > band_window {
            recent.pop_front();
        }
        match *stop {
            StopSpec::PhiBelow { target, .. } if phi <= target => {
                stop_reason = StopReason::Converged;
                break;
            }
            StopSpec::SteadyState { window, tol, .. } if recent.len() == window => {
                let band = band_of(&recent);
                if band.phi_max - band.phi_min <= tol * band.phi_mean.abs().max(1.0) {
                    stop_reason = StopReason::SteadyState;
                    break;
                }
            }
            _ => {}
        }
    }

    if resident {
        // End the session: the final sync is a no-op (the record loop
        // left the mirror fresh) and the engine returns to snapshot-mode
        // rounds for any caller reusing it.
        engine.resident_end();
    }
    let final_total = records.last().map_or(initial_total, |r| r.total);
    // An engine armed with a fault plan (even an empty one) reports its
    // executor-fault counters; unarmed engines omit the section.
    let faults = engine.faults().map(|_| {
        let fs = engine.fault_stats();
        FaultTotals {
            faults_injected: fs.faults_injected,
            recoveries: fs.recoveries,
            rehomed_values: fs.rehomed_values,
        }
    });
    // Distill the recorder (when armed) into plain totals; histogram bin
    // count is irrelevant to the totals, so the default shape is fine.
    let telemetry = tel.recorder().map(|rec| {
        let summary =
            TraceSummary::from_events(&rec.events(), dlb_telemetry::DEFAULT_BINS, rec.dropped());
        TelemetryTotals::from(&summary)
    });
    ScenarioReport {
        scenario: name.to_string(),
        protocol: engine.protocol().name().to_string(),
        n: engine.protocol().n(),
        backend: engine.backend().name().to_string(),
        resident,
        threads: engine.threads(),
        stats: stats_mode_name(engine.stats_mode()),
        rounds: records.len(),
        stop: stop_reason,
        initial_total,
        final_total,
        injected_total,
        consumed_total,
        migrated_total,
        phi_trace,
        records,
        steady: band_of(&recent),
        comm,
        faults,
        telemetry,
    }
}

fn build_engine<P: Protocol + Sync>(
    protocol: P,
    exec: ExecSpec,
    stats: StatsMode,
    tel: Telemetry,
) -> Engine<P> {
    Engine::with_backend(protocol, exec)
        .with_stats_mode(stats)
        .with_telemetry(tel)
}

/// Fault machinery compiled once per run from a scenario's `[faults]`
/// section: the churn geometry (shard owner map on the ground graph,
/// per-shard member counts for re-homing totals) and the executor
/// [`FaultPlan`](dlb_core::FaultPlan) to arm the engine with. The shard
/// count and owner map resolve against the *scenario's own* backend, so
/// an executor override (the bit-identity replays) runs the identical
/// degraded trajectory.
struct FaultSetup {
    every: usize,
    down: usize,
    seed: u64,
    shards: usize,
    owners: Vec<u32>,
    members: Vec<u64>,
    plan: Option<dlb_core::FaultPlan>,
}

fn compile_faults(sc: &Scenario, g: &dlb_graphs::Graph) -> Result<Option<FaultSetup>, String> {
    let Some(f) = &sc.faults else { return Ok(None) };
    let shards = f.resolved_shards(&sc.exec)?;
    let partition = match &sc.exec {
        ExecSpec::Sharded { partition, .. } | ExecSpec::Message { partition, .. } => *partition,
        _ => dlb_graphs::PartitionSpec::Range { shards },
    };
    let part = partition.build(g);
    let members = part.member_lists().iter().map(|m| m.len() as u64).collect();
    let plan = f
        .has_exec_kinds()
        .then(|| f.fault_plan(shards, sc.stop.max_rounds()));
    Ok(Some(FaultSetup {
        every: f.every,
        down: f.down,
        seed: f.seed,
        shards,
        owners: part.owners().to_vec(),
        members,
        plan,
    }))
}

/// Wraps the run's graph stream in the shard fail/recover churn model
/// when the scenario declares faults.
fn churned_sequence(
    base: Box<dyn GraphSequence + Sync>,
    faults: &Option<FaultSetup>,
) -> Box<dyn GraphSequence + Sync> {
    match faults {
        Some(fs) => Box::new(ShardChurnSequence::new(
            base,
            fs.owners.clone(),
            ChurnSchedule::new(fs.every, fs.down, fs.shards, fs.seed),
        )),
        None => base,
    }
}

/// Merges the scenario-level churn counters into the report's fault
/// totals by replaying the same seeded schedule over the rounds the run
/// actually executed: each failure re-homes the failed shard's owned
/// values; a failure whose down window drained inside the run counts as
/// recovered.
fn merge_churn_totals(mut report: ScenarioReport, faults: &Option<FaultSetup>) -> ScenarioReport {
    let Some(fs) = faults else { return report };
    let mut totals = report.faults.take().unwrap_or_default();
    let mut sched = ChurnSchedule::new(fs.every, fs.down, fs.shards, fs.seed);
    for _ in 0..report.rounds {
        let before = sched.failures();
        let failed = sched.advance();
        if sched.failures() > before {
            let s = failed.expect("a new failure names a shard");
            totals.faults_injected += 1;
            totals.rehomed_values += fs.members[s];
        }
    }
    totals.recoveries += sched.failures() - u64::from(sched.failed().is_some());
    report.faults = Some(totals);
    report
}

/// Runs a [`Scenario`], with optional engine overrides for replaying the
/// same description under a different executor or statistics mode (the
/// bit-identity suites drive these).
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    scenario: Scenario,
    exec: Option<ExecSpec>,
    stats: Option<StatsMode>,
    telemetry: Option<Telemetry>,
}

impl ScenarioRunner {
    /// Wraps a scenario.
    pub fn new(scenario: Scenario) -> Self {
        ScenarioRunner {
            scenario,
            exec: None,
            stats: None,
            telemetry: None,
        }
    }

    /// Overrides the scenario's executor for this run through the legacy
    /// `threads` scalar (see [`exec_from_threads`]).
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_exec(exec_from_threads(threads))
    }

    /// Overrides the scenario's execution backend for this run.
    pub fn with_exec(mut self, exec: ExecSpec) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Overrides the scenario's statistics mode for this run.
    pub fn with_stats(mut self, stats: StatsMode) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Supplies the telemetry handle for this run, overriding the
    /// scenario's `[telemetry]` section. Callers that keep a clone of an
    /// armed handle (the CLI's `--trace` export) can read the raw span
    /// events back from their own [`Recorder`](dlb_telemetry::Recorder)
    /// after the run.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Builds everything the scenario names — graph or sequence, initial
    /// loads, workload, protocol, engine — and drives it to the stop
    /// condition.
    pub fn run(&self) -> Result<ScenarioReport, String> {
        let sc = &self.scenario;
        sc.validate()?;
        let exec = self.exec.unwrap_or(sc.exec);
        // The scenario's own exec was just validated; an override comes in
        // unchecked and must not panic inside the engine constructor.
        validate_exec(&exec)?;
        if sc.faults.is_some() && matches!(exec, ExecSpec::Message { resident: true, .. }) {
            return Err(
                "faults need the snapshot-based message backend (drop resident = true)".into(),
            );
        }
        let g = sc.topology.build();
        let n = g.n();
        let stats = self.stats.unwrap_or(sc.stats);
        // Telemetry arms from the override (CLI export), else from the
        // scenario's `[telemetry]` section; a scenario without one runs
        // fully unobserved — `Telemetry::Off` is a no-op branch, so those
        // runs stay bit-identical and cost nothing extra per round.
        let tel = match &self.telemetry {
            Some(t) => t.clone(),
            None => sc
                .telemetry
                .as_ref()
                .map_or(Telemetry::Off, |spec| spec.armed(&exec)),
        };
        let faults = compile_faults(sc, &g)?;
        let mut rng = StdRng::seed_from_u64(sc.init.seed);

        match &sc.protocol {
            ProtocolSpec::Continuous => {
                let mut loads = init::continuous_loads(n, sc.init.avg, sc.init.dist, &mut rng);
                let mut workload = compile_workloads::<f64>(&sc.workloads, n);
                let workload = workload.as_mut().map(|w| w as &mut dyn Workload<f64>);
                match (&sc.sequence, &faults) {
                    (None, None) => {
                        let mut engine =
                            build_engine(ContinuousDiffusion::new(&g), exec, stats, tel.clone());
                        Ok(run_driven(
                            &mut engine,
                            &mut loads,
                            workload,
                            &sc.stop,
                            &sc.name,
                        ))
                    }
                    (seq_spec, _) => {
                        // Faults force the dynamic protocol even on a
                        // fixed network: churn degrades the round graph.
                        let base = match seq_spec {
                            Some(spec) => spec.build(g.clone()),
                            None => Box::new(StaticSequence::new(g.clone())) as _,
                        };
                        let mut seq = churned_sequence(base, &faults);
                        let mut engine = build_engine(
                            DynamicContinuousDiffusion::new(&mut seq),
                            exec,
                            stats,
                            tel.clone(),
                        );
                        if let Some(plan) = faults.as_ref().and_then(|fs| fs.plan.as_ref()) {
                            engine.set_faults(Some(plan.clone()));
                        }
                        let report =
                            run_driven(&mut engine, &mut loads, workload, &sc.stop, &sc.name);
                        Ok(merge_churn_totals(report, &faults))
                    }
                }
            }
            ProtocolSpec::Discrete => {
                // Token scenarios round the average to whole tokens.
                let avg = sc.init.avg.round() as i64;
                let mut loads = init::discrete_loads(n, avg, sc.init.dist, &mut rng);
                let mut workload = compile_workloads::<i64>(&sc.workloads, n);
                let workload = workload.as_mut().map(|w| w as &mut dyn Workload<i64>);
                match (&sc.sequence, &faults) {
                    (None, None) => {
                        let mut engine =
                            build_engine(DiscreteDiffusion::new(&g), exec, stats, tel.clone());
                        Ok(run_driven(
                            &mut engine,
                            &mut loads,
                            workload,
                            &sc.stop,
                            &sc.name,
                        ))
                    }
                    (seq_spec, _) => {
                        let base = match seq_spec {
                            Some(spec) => spec.build(g.clone()),
                            None => Box::new(StaticSequence::new(g.clone())) as _,
                        };
                        let mut seq = churned_sequence(base, &faults);
                        let mut engine = build_engine(
                            DynamicDiscreteDiffusion::new(&mut seq),
                            exec,
                            stats,
                            tel.clone(),
                        );
                        if let Some(plan) = faults.as_ref().and_then(|fs| fs.plan.as_ref()) {
                            engine.set_faults(Some(plan.clone()));
                        }
                        let report =
                            run_driven(&mut engine, &mut loads, workload, &sc.stop, &sc.name);
                        Ok(merge_churn_totals(report, &faults))
                    }
                }
            }
            ProtocolSpec::Heterogeneous { capacities } => {
                let caps = capacities.build(n);
                let mut loads = init::continuous_loads(n, sc.init.avg, sc.init.dist, &mut rng);
                let mut workload = compile_workloads::<f64>(&sc.workloads, n);
                let workload = workload.as_mut().map(|w| w as &mut dyn Workload<f64>);
                let mut engine = build_engine(
                    HeterogeneousDiffusion::new(&g, caps),
                    exec,
                    stats,
                    tel.clone(),
                );
                Ok(run_driven(
                    &mut engine,
                    &mut loads,
                    workload,
                    &sc.stop,
                    &sc.name,
                ))
            }
        }
    }
}

impl Scenario {
    /// Runs the scenario as described (see [`ScenarioRunner`] for
    /// per-run overrides).
    pub fn run(&self) -> Result<ScenarioReport, String> {
        ScenarioRunner::new(self.clone()).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        DrainSpec, PatternSpec, PlacementSpec, SequenceKind, SequenceSpec, TopologySpec,
        WorkloadSpec,
    };

    fn trace_bits(report: &ScenarioReport) -> Vec<u64> {
        report.phi_trace.iter().map(|p| p.to_bits()).collect()
    }

    #[test]
    fn builtins_run_and_conserve() {
        for name in Scenario::builtin_names() {
            let report = Scenario::builtin(name).unwrap().run().expect(name);
            assert!(report.rounds > 0, "{name}");
            assert_eq!(report.phi_trace.len(), report.rounds + 1, "{name}");
            assert_eq!(report.records.len(), report.rounds, "{name}");
            assert!(
                report.conservation_relative_error() < 1e-9,
                "{name}: conservation error {}",
                report.conservation_error()
            );
        }
    }

    #[test]
    fn serial_and_parallel_scenarios_bit_identical() {
        for name in ["bursty-torus", "zipf-hypercube-drain", "churn-markov"] {
            let sc = Scenario::builtin(name).unwrap();
            let serial = ScenarioRunner::new(sc.clone()).run().unwrap();
            for threads in [2usize, 3] {
                let par = ScenarioRunner::new(sc.clone())
                    .with_threads(threads)
                    .run()
                    .unwrap();
                assert_eq!(serial.rounds, par.rounds, "{name}/{threads}");
                assert_eq!(
                    trace_bits(&serial),
                    trace_bits(&par),
                    "{name}/{threads}: Φ trace diverged"
                );
                assert_eq!(
                    serial.final_total.to_bits(),
                    par.final_total.to_bits(),
                    "{name}/{threads}"
                );
            }
        }
    }

    #[test]
    fn message_backend_scenarios_bit_identical_with_comm_totals() {
        // Fixed, discrete, and dynamic-topology regimes on shard-isolated
        // workers must reproduce the serial trajectory bit for bit while
        // reporting their exchange volume.
        for name in ["bursty-torus", "zipf-hypercube-drain", "churn-markov"] {
            let sc = Scenario::builtin(name).unwrap();
            let serial = ScenarioRunner::new(sc.clone()).run().unwrap();
            assert!(serial.comm.is_none(), "{name}: serial run reported comm");
            let msg = ScenarioRunner::new(sc.clone())
                .with_exec(ExecSpec::Message {
                    partition: dlb_graphs::PartitionSpec::Bfs { shards: 6 },
                    resident: false,
                })
                .run()
                .unwrap();
            assert_eq!(serial.rounds, msg.rounds, "{name}");
            assert_eq!(
                trace_bits(&serial),
                trace_bits(&msg),
                "{name}: Φ trace diverged on the message backend"
            );
            assert_eq!(
                serial.final_total.to_bits(),
                msg.final_total.to_bits(),
                "{name}"
            );
            assert_eq!(msg.backend, "message", "{name}");
            let comm = msg.comm.expect("message run reports comm totals");
            assert!(comm.messages > 0, "{name}: no messages recorded");
            assert!(comm.values_sent > 0, "{name}: no values recorded");
            assert_eq!(comm.halo_bytes, comm.values_sent * 8, "{name}");
            assert!(comm.max_round_shard_values > 0, "{name}");
        }
    }

    #[test]
    fn fault_injected_scenario_recovers_and_matches_serial_replay() {
        let sc = Scenario::builtin("churn-shards-message").unwrap();
        let msg = sc.run().unwrap();
        assert_eq!(msg.backend, "message");
        let f = msg.faults.expect("fault run reports totals");
        assert!(f.faults_injected > 0, "no faults delivered");
        assert!(f.recoveries > 0, "no recoveries recorded");
        assert!(f.rehomed_values > 0, "no values re-homed");
        assert!(msg.conservation_relative_error() < 1e-9);
        // The headline guarantee at scenario level: executor faults are
        // recovered exactly, so a serial replay over the same degraded
        // round sequence (same churn seed, same owner map) reproduces
        // the trajectory bit for bit.
        let serial = ScenarioRunner::new(sc.clone())
            .with_exec(ExecSpec::Serial)
            .run()
            .unwrap();
        assert_eq!(serial.rounds, msg.rounds);
        assert_eq!(
            trace_bits(&serial),
            trace_bits(&msg),
            "Φ trace diverged under injected faults"
        );
        assert_eq!(serial.final_total.to_bits(), msg.final_total.to_bits());
        // The serial replay still carries the churn counters (executor
        // faults are a message/sharded concept and stay at zero there).
        let sf = serial.faults.expect("churn counters survive the override");
        assert!(sf.faults_injected > 0);
        assert!(sf.faults_injected <= f.faults_injected);
        // The fault section round-trips through the report's JSONL.
        let header = msg.to_jsonl();
        let header = header.lines().next().unwrap().to_string();
        assert!(header.contains("\"faults_injected\""), "{header}");
        assert!(header.contains("\"recoveries\""), "{header}");
        assert!(header.contains("\"rehomed_values\""), "{header}");
    }

    #[test]
    fn pure_churn_scenario_freezes_the_failed_shard() {
        // Churn without executor fault kinds on the serial backend: the
        // failed shard's nodes drop out of the round graph, so the run
        // still conserves exactly and reports the churn counters.
        let sc = Scenario::new(
            "churn-only",
            TopologySpec::Torus2d { rows: 4, cols: 4 },
            ProtocolSpec::Discrete,
        )
        .with_init(init::Workload::Spike, 64.0, 3)
        .with_faults(crate::scenario::FaultsSpec {
            every: 4,
            down: 2,
            shards: 4,
            seed: 11,
            ..crate::scenario::FaultsSpec::default()
        })
        .with_stop(StopSpec::Rounds { rounds: 24 });
        let report = sc.run().unwrap();
        assert_eq!(report.rounds, 24);
        assert_eq!(report.conservation_error(), 0.0, "tokens conserve exactly");
        let f = report.faults.expect("churn counters reported");
        assert_eq!(f.faults_injected, 6, "failures at rounds 4,8,…,24");
        assert_eq!(f.recoveries, 5, "the round-24 failure is still down");
        assert_eq!(f.rehomed_values, 6 * 4, "4 owned values per failure");
        // Φ never increases across a pure-churn run without workloads:
        // degraded rounds freeze the failed shard and balance the rest.
        for w in report.phi_trace.windows(2) {
            assert!(w[1] <= w[0], "Φ increased across a degraded round");
        }
    }

    #[test]
    fn stats_modes_do_not_change_the_trajectory() {
        let sc = Scenario::builtin("bursty-torus").unwrap();
        let full = ScenarioRunner::new(sc.clone())
            .with_stats(StatsMode::Full)
            .run()
            .unwrap();
        for mode in [StatsMode::EveryK(7), StatsMode::PhiOnly, StatsMode::Off] {
            let lazy = ScenarioRunner::new(sc.clone())
                .with_stats(mode)
                .run()
                .unwrap();
            assert_eq!(full.rounds, lazy.rounds, "{mode:?}");
            assert_eq!(trace_bits(&full), trace_bits(&lazy), "{mode:?}");
            assert_eq!(full.stop, lazy.stop, "{mode:?}");
            // Injected/consumed are workload-side and mode-independent…
            assert_eq!(
                full.injected_total.to_bits(),
                lazy.injected_total.to_bits(),
                "{mode:?}"
            );
            assert_eq!(
                full.consumed_total.to_bits(),
                lazy.consumed_total.to_bits(),
                "{mode:?}"
            );
        }
        // …while migrated totals are only tallied on flow-computing rounds.
        let off = ScenarioRunner::new(sc)
            .with_stats(StatsMode::Off)
            .run()
            .unwrap();
        assert_eq!(off.migrated_total, 0.0);
        assert!(full.migrated_total > 0.0);
    }

    #[test]
    fn steady_state_detector_stops_a_balanced_drain() {
        // Constant uniform arrivals exactly matched by proportional drain
        // settle Φ quickly; the detector must fire before the budget.
        let sc = Scenario::new(
            "steady",
            TopologySpec::Torus2d { rows: 8, cols: 8 },
            ProtocolSpec::Continuous,
        )
        .with_init(init::Workload::Spike, 50.0, 1)
        .with_workload(WorkloadSpec::Arrivals {
            pattern: PatternSpec::Constant { per_round: 64.0 },
            placement: PlacementSpec::Uniform,
        })
        .with_workload(WorkloadSpec::Drain {
            model: DrainSpec::Proportional { fraction: 0.02 },
        })
        .with_stop(StopSpec::SteadyState {
            window: 16,
            tol: 0.05,
            max_rounds: 5000,
        });
        let report = sc.run().unwrap();
        assert_eq!(report.stop, StopReason::SteadyState);
        assert!(report.rounds < 5000);
        let band = report.steady;
        assert_eq!(band.window, 16);
        assert!(band.phi_min <= band.phi_mean && band.phi_mean <= band.phi_max);
    }

    #[test]
    fn phi_below_stop_reports_converged() {
        let sc = Scenario::new(
            "conv",
            TopologySpec::Hypercube { dim: 4 },
            ProtocolSpec::Continuous,
        )
        .with_init(init::Workload::Spike, 10.0, 1)
        .with_stop(StopSpec::PhiBelow {
            target: 1e-6,
            max_rounds: 10_000,
        });
        let report = sc.run().unwrap();
        assert_eq!(report.stop, StopReason::Converged);
        assert!(report.phi_final() <= 1e-6);
        // No workload: a pure convergence run conserves the initial total.
        assert!(report.conservation_relative_error() < 1e-12);
        assert_eq!(report.injected_total, 0.0);
        assert_eq!(report.consumed_total, 0.0);
    }

    #[test]
    fn discrete_conservation_is_exact() {
        let report = Scenario::builtin("zipf-hypercube-drain")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            report.conservation_error(),
            0.0,
            "token conservation must be exact"
        );
        // Tokens are integers: the final total is integral.
        assert_eq!(report.final_total.fract(), 0.0);
    }

    #[test]
    fn outage_sequence_scenario_runs() {
        let sc = Scenario::new(
            "outage",
            TopologySpec::Cycle { n: 12 },
            ProtocolSpec::Continuous,
        )
        .with_sequence(SequenceSpec {
            kind: SequenceKind::Static,
            outage_every: Some(3),
        })
        .with_init(init::Workload::Spike, 10.0, 1)
        .with_stop(StopSpec::Rounds { rounds: 9 });
        let report = sc.run().unwrap();
        assert_eq!(report.rounds, 9);
        // Outage rounds (3, 6, 9) freeze Φ: trace[k] == trace[k-1].
        for k in [3usize, 6, 9] {
            assert_eq!(
                report.phi_trace[k].to_bits(),
                report.phi_trace[k - 1].to_bits(),
                "outage round {k} must not change Φ"
            );
        }
        assert!(report.conservation_relative_error() < 1e-12);
    }

    #[test]
    fn static_sequence_scenario_matches_fixed_network_run() {
        let fixed = Scenario::new(
            "fixed",
            TopologySpec::Torus2d { rows: 4, cols: 4 },
            ProtocolSpec::Continuous,
        )
        .with_init(init::Workload::Ramp, 25.0, 1)
        .with_workload(WorkloadSpec::Arrivals {
            pattern: PatternSpec::Constant { per_round: 16.0 },
            placement: PlacementSpec::Hotspot { node: 5 },
        })
        .with_stop(StopSpec::Rounds { rounds: 40 });
        let dynamic = fixed.clone().with_sequence(SequenceSpec {
            kind: SequenceKind::Static,
            outage_every: None,
        });
        let a = fixed.run().unwrap();
        let b = dynamic.run().unwrap();
        assert_eq!(trace_bits(&a), trace_bits(&b));
        assert_eq!(a.final_total.to_bits(), b.final_total.to_bits());
    }

    #[test]
    fn heterogeneous_scenario_tracks_weighted_potential() {
        let report = Scenario::builtin("adversarial-hetero")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.protocol, "hetero-cont");
        assert!(report.conservation_relative_error() < 1e-9);
        // The adversary keeps re-injecting: the trace can't collapse to 0.
        assert!(report.phi_final() > 0.0);
    }

    #[test]
    fn telemetry_armed_runs_report_totals_and_stay_bit_identical() {
        let plain = Scenario::builtin("bursty-torus").unwrap();
        let traced = plain
            .clone()
            .with_telemetry(crate::scenario::TelemetrySpec::default());
        let a = plain.run().unwrap();
        let b = traced.clone().run().unwrap();
        assert!(a.telemetry.is_none(), "no [telemetry] section → no totals");
        assert_eq!(
            trace_bits(&a),
            trace_bits(&b),
            "recording changed the trajectory"
        );
        assert_eq!(a.final_total.to_bits(), b.final_total.to_bits());
        let t = b.telemetry.expect("armed run reports totals");
        assert!(t.spans > 0);
        for phase in ["workload-apply", "gather-interior", "stats"] {
            assert!(
                t.phases.iter().any(|(p, ..)| p == phase),
                "missing {phase} in {:?}",
                t.phases
            );
        }
        // Serial backend: no shard lanes, hence no busy imbalance.
        assert!(t.busy_imbalance_mean.is_none());

        // Message backend: per-shard lanes yield imbalance ratios ≥ 1 and
        // the boundary-gather phase, with the trajectory still identical.
        let msg = ScenarioRunner::new(traced)
            .with_exec(ExecSpec::Message {
                partition: dlb_graphs::PartitionSpec::Bfs { shards: 4 },
                resident: false,
            })
            .run()
            .unwrap();
        assert_eq!(trace_bits(&a), trace_bits(&msg), "message run diverged");
        let mt = msg.telemetry.as_ref().expect("message run reports totals");
        let mean = mt.busy_imbalance_mean.expect("shard lanes present");
        let max = mt.busy_imbalance_max.unwrap();
        assert!(mean >= 1.0 && max >= mean, "mean {mean}, max {max}");
        assert!(mt.phases.iter().any(|(p, ..)| p == "gather-boundary"));
        let header = msg.to_jsonl();
        let header = header.lines().next().unwrap();
        assert!(header.contains("\"telemetry_spans\""), "{header}");
    }

    #[test]
    fn run_driven_with_no_workload_is_a_plain_convergence_run() {
        use dlb_core::engine::IntoEngine;
        let g = dlb_graphs::topology::cycle(16);
        let mut engine = ContinuousDiffusion::new(&g).engine();
        let mut loads = vec![0.0; 16];
        loads[0] = 160.0;
        let report = run_driven(
            &mut engine,
            &mut loads,
            None,
            &StopSpec::Rounds { rounds: 12 },
            "bare",
        );
        assert_eq!(report.rounds, 12);
        assert_eq!(report.scenario, "bare");
        assert_eq!(report.threads, 1);
        assert!(report.phi_final() < report.phi_trace[0]);
        assert!((report.final_total - 160.0).abs() < 1e-9);
    }
}
