#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! # dlb-workloads
//!
//! Online workloads and declarative scenarios: the subsystem that turns
//! the workspace's convergence calculator into a system that balances
//! **while work arrives, executes, and completes**.
//!
//! The paper analyzes diffusion rounds over a fixed total load; every
//! driver in `dlb-core`/`dlb-dynamics` runs an initial vector to a
//! potential target. Real deployments — the ROADMAP's "heavy traffic from
//! millions of users" — live in *online* regimes: requests arrive (often
//! Zipf-skewed onto a few hot nodes), each node drains what its service
//! capacity allows, and the interesting quantity is the steady-state Φ
//! band set by the arrival/drain balance. This crate describes and runs
//! those regimes in three layers:
//!
//! * **[`workload`]** — the [`Workload`] trait (`apply(round, loads, ctx)
//!   → WorkloadDelta`) and a library of seeded-deterministic generators:
//!   constant-rate, bursty on/off, Zipf/hotspot skew, diurnal sine,
//!   adversarial max-loaded re-injection, fixed-capacity and proportional
//!   service drains, and a [`Compose`] combinator. All generic over the
//!   engine's two load types (`f64`, `i64` tokens — quantized by
//!   cumulative rounding);
//! * **[`scenario`]** — the declarative [`Scenario`]: one plain-data value
//!   binding topology (or dynamic [`GraphSequence`] model), initial
//!   distribution, workload, protocol, [`StatsMode`] and stop condition
//!   (round budget / Φ target / steady-state detection), with a builder
//!   API, built-in named scenarios, and a serde-free TOML/JSON-lines file
//!   format ([`parse`]) that round-trips;
//! * **[`runner`]** — the [`ScenarioRunner`]: drives an engine round by
//!   round, interleaving workload deltas between rounds in place on the
//!   front buffer (the zero-copy ping-pong stays intact), and emits a
//!   [`ScenarioReport`] time series (Φ trace, injected/consumed/migrated
//!   totals, per-round imbalance, steady-state Φ band) with JSON-lines
//!   output for CI and tooling.
//!
//! The invariants the rest of the workspace pins extend to scenarios:
//! trajectories are **bit-identical across serial/parallel executors, any
//! thread count, and every stats mode**, and every run satisfies load
//! conservation (`final = initial + Σinjected − Σconsumed` — exact for
//! tokens).
//!
//! [`GraphSequence`]: dlb_dynamics::GraphSequence
//! [`StatsMode`]: dlb_core::engine::StatsMode

pub mod parse;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod workload;

pub use report::{
    CommTotals, FaultTotals, RoundRecord, ScenarioReport, SteadyBand, StopReason, TelemetryTotals,
};
pub use runner::{run_driven, ScenarioRunner};
pub use scenario::{
    exec_from_threads, exec_spec_from_parts, partition_from_name, validate_exec, CapacitySpec,
    DrainSpec, ExecSpec, FaultsSpec, InitSpec, PatternSpec, PlacementSpec, ProtocolSpec, Scenario,
    SequenceKind, SequenceSpec, StopSpec, TelemetrySpec, TopologySpec, WorkloadSpec,
};
pub use workload::{
    zipf_weights, Arrivals, Compose, Drain, DrainModel, Placement, RatePattern, ScenarioLoad,
    Workload, WorkloadCtx, WorkloadDelta,
};
