//! Declarative scenarios: one value that names everything an end-to-end
//! run needs — topology (or dynamic graph sequence), initial load
//! distribution, online workload, protocol, statistics mode, and stop
//! condition.
//!
//! A [`Scenario`] is plain data (every field `Clone + PartialEq`), so it
//! can be built programmatically, loaded from a TOML/JSON-lines file (see
//! [`crate::parse`]), printed, diffed, and replayed — the experiment
//! configuration *is* the artifact. [`Scenario::run`] (in
//! [`crate::runner`]) turns it into a [`crate::report::ScenarioReport`].

use crate::workload::{
    zipf_weights, Arrivals, Compose, Drain, Placement, RatePattern, ScenarioLoad, Workload,
};
use dlb_core::engine::{Backend, StatsMode};
use dlb_core::init;
use dlb_dynamics::{
    GraphSequence, IidSubgraphSequence, MarkovChurnSequence, MatchingOnlySequence, OutageSequence,
    StaticSequence,
};
use dlb_graphs::PartitionSpec;
use dlb_graphs::{topology, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named topology family with its parameters — the fixed ground graph
/// of the scenario (dynamic models activate per-round subsets of it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// Path `P_n`.
    Path {
        /// Node count.
        n: usize,
    },
    /// Cycle `C_n`.
    Cycle {
        /// Node count.
        n: usize,
    },
    /// 2-D grid (open boundaries).
    Grid2d {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// 2-D torus (wrap-around).
    Torus2d {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Hypercube `Q_dim` (`n = 2^dim`).
    Hypercube {
        /// Dimension.
        dim: u32,
    },
    /// Complete graph `K_n`.
    Complete {
        /// Node count.
        n: usize,
    },
    /// Star (node 0 is the hub).
    Star {
        /// Node count.
        n: usize,
    },
    /// Undirected de Bruijn on `2^dim` nodes.
    DeBruijn {
        /// Dimension.
        dim: u32,
    },
    /// Random `d`-regular graph (seeded).
    RandomRegular {
        /// Node count.
        n: usize,
        /// Degree.
        d: usize,
        /// Construction seed.
        seed: u64,
    },
}

impl TopologySpec {
    /// Family name as used in scenario files.
    pub fn kind(&self) -> &'static str {
        match self {
            TopologySpec::Path { .. } => "path",
            TopologySpec::Cycle { .. } => "cycle",
            TopologySpec::Grid2d { .. } => "grid2d",
            TopologySpec::Torus2d { .. } => "torus2d",
            TopologySpec::Hypercube { .. } => "hypercube",
            TopologySpec::Complete { .. } => "complete",
            TopologySpec::Star { .. } => "star",
            TopologySpec::DeBruijn { .. } => "debruijn",
            TopologySpec::RandomRegular { .. } => "random-regular",
        }
    }

    /// Node count of the built graph.
    pub fn n(&self) -> usize {
        match *self {
            TopologySpec::Path { n }
            | TopologySpec::Cycle { n }
            | TopologySpec::Complete { n }
            | TopologySpec::Star { n }
            | TopologySpec::RandomRegular { n, .. } => n,
            TopologySpec::Grid2d { rows, cols } | TopologySpec::Torus2d { rows, cols } => {
                rows * cols
            }
            TopologySpec::Hypercube { dim } | TopologySpec::DeBruijn { dim } => 1usize << dim,
        }
    }

    /// Instantiates the graph.
    pub fn build(&self) -> Graph {
        match *self {
            TopologySpec::Path { n } => topology::path(n),
            TopologySpec::Cycle { n } => topology::cycle(n),
            TopologySpec::Grid2d { rows, cols } => topology::grid2d(rows, cols),
            TopologySpec::Torus2d { rows, cols } => topology::torus2d(rows, cols),
            TopologySpec::Hypercube { dim } => topology::hypercube(dim),
            TopologySpec::Complete { n } => topology::complete(n),
            TopologySpec::Star { n } => topology::star(n),
            TopologySpec::DeBruijn { dim } => topology::de_bruijn(dim),
            TopologySpec::RandomRegular { n, d, seed } => {
                topology::random_regular(n, d, &mut StdRng::seed_from_u64(seed))
            }
        }
    }
}

/// Which dynamic-network model activates per-round subgraphs of the
/// ground topology; `None` on the [`Scenario`] means a fixed network.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceSpec {
    /// The churn model.
    pub kind: SequenceKind,
    /// When set, every `k`-th round is a total communication outage
    /// (wraps the model in [`OutageSequence`]).
    pub outage_every: Option<usize>,
}

/// The concrete churn model of a [`SequenceSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum SequenceKind {
    /// Every round uses the full ground graph (useful to pin the
    /// static-sequence ≡ fixed-network invariant from a scenario file).
    Static,
    /// Each ground edge kept i.i.d. with probability `p` per round.
    Iid {
        /// Keep probability.
        p: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Markov up/down edge churn.
    Markov {
        /// P(up → down) per round.
        p_fail: f64,
        /// P(down → up) per round.
        p_recover: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Each round activates only a random maximal matching.
    MatchingOnly {
        /// RNG seed.
        seed: u64,
    },
}

impl SequenceSpec {
    /// Model name as used in scenario files.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            SequenceKind::Static => "static",
            SequenceKind::Iid { .. } => "iid",
            SequenceKind::Markov { .. } => "markov",
            SequenceKind::MatchingOnly { .. } => "matching-only",
        }
    }

    /// Builds the runnable sequence over `ground`. Boxed (`+ Sync`) so the
    /// runner stays monomorphization-free and the parallel executor can
    /// share the protocol across workers.
    pub fn build(&self, ground: Graph) -> Box<dyn GraphSequence + Sync> {
        let inner: Box<dyn GraphSequence + Sync> = match self.kind {
            SequenceKind::Static => Box::new(StaticSequence::new(ground)),
            SequenceKind::Iid { p, seed } => Box::new(IidSubgraphSequence::new(ground, p, seed)),
            SequenceKind::Markov {
                p_fail,
                p_recover,
                seed,
            } => Box::new(MarkovChurnSequence::new(ground, p_fail, p_recover, seed)),
            SequenceKind::MatchingOnly { seed } => {
                Box::new(MatchingOnlySequence::new(ground, seed))
            }
        };
        match self.outage_every {
            Some(every) => Box::new(OutageSequence::new(inner, every)),
            None => inner,
        }
    }
}

/// Which balancing protocol the scenario drives.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolSpec {
    /// Algorithm 1, continuous (divisible load).
    Continuous,
    /// Algorithm 1, discrete (integral tokens).
    Discrete,
    /// Capacity-weighted heterogeneous diffusion (fixed networks only).
    Heterogeneous {
        /// How node capacities are generated.
        capacities: CapacitySpec,
    },
}

impl ProtocolSpec {
    /// Protocol name as used in scenario files.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolSpec::Continuous => "continuous",
            ProtocolSpec::Discrete => "discrete",
            ProtocolSpec::Heterogeneous { .. } => "heterogeneous",
        }
    }
}

/// Deterministic capacity vectors for the heterogeneous protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum CapacitySpec {
    /// All nodes capacity 1 (degenerates to homogeneous diffusion).
    Uniform,
    /// A `fast_fraction` of the nodes (lowest ids) have capacity `ratio`,
    /// the rest capacity 1 — the classic big.LITTLE cluster.
    TwoTier {
        /// Fraction of fast nodes in `(0, 1]`.
        fast_fraction: f64,
        /// Capacity multiple of the fast tier.
        ratio: f64,
    },
    /// Capacities ramp linearly from 1 to `ratio` across node ids.
    Ramp {
        /// Capacity of the last node.
        ratio: f64,
    },
}

impl CapacitySpec {
    /// Capacity spec name as used in scenario files.
    pub fn kind(&self) -> &'static str {
        match self {
            CapacitySpec::Uniform => "uniform",
            CapacitySpec::TwoTier { .. } => "two-tier",
            CapacitySpec::Ramp { .. } => "ramp",
        }
    }

    /// Builds the capacity vector for `n` nodes.
    pub fn build(&self, n: usize) -> Vec<f64> {
        match *self {
            CapacitySpec::Uniform => vec![1.0; n],
            CapacitySpec::TwoTier {
                fast_fraction,
                ratio,
            } => {
                let fast = ((fast_fraction * n as f64).ceil() as usize).clamp(1, n);
                (0..n).map(|i| if i < fast { ratio } else { 1.0 }).collect()
            }
            CapacitySpec::Ramp { ratio } => {
                if n == 1 {
                    return vec![1.0];
                }
                (0..n)
                    .map(|i| 1.0 + (ratio - 1.0) * i as f64 / (n - 1) as f64)
                    .collect()
            }
        }
    }
}

/// Initial load distribution: one of `dlb_core::init`'s named
/// distributions, its average load, and the RNG seed for randomized ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitSpec {
    /// The named distribution.
    pub dist: init::Workload,
    /// Average load per node.
    pub avg: f64,
    /// Seed for randomized distributions.
    pub seed: u64,
}

impl InitSpec {
    /// Parses a distribution name (`spike`, `uniform`, `ramp`, `bimodal`,
    /// `balanced`).
    pub fn dist_from_name(name: &str) -> Result<init::Workload, String> {
        init::Workload::ALL
            .into_iter()
            .find(|w| w.name() == name)
            .ok_or_else(|| format!("unknown init distribution {name:?}"))
    }
}

/// Per-round arrival rate, declaratively.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternSpec {
    /// See [`RatePattern::Constant`].
    Constant {
        /// Total injected per round.
        per_round: f64,
    },
    /// See [`RatePattern::OnOff`].
    Bursty {
        /// Burst rate.
        high: f64,
        /// Idle rate.
        low: f64,
        /// Burst length (rounds).
        on_rounds: u64,
        /// Gap length (rounds).
        off_rounds: u64,
    },
    /// See [`RatePattern::Diurnal`].
    Diurnal {
        /// Mean rate.
        mean: f64,
        /// Relative swing.
        amplitude: f64,
        /// Period (rounds).
        period: u64,
    },
}

impl PatternSpec {
    fn compile(&self) -> RatePattern {
        match *self {
            PatternSpec::Constant { per_round } => RatePattern::Constant { per_round },
            PatternSpec::Bursty {
                high,
                low,
                on_rounds,
                off_rounds,
            } => RatePattern::OnOff {
                high,
                low,
                on_rounds,
                off_rounds,
            },
            PatternSpec::Diurnal {
                mean,
                amplitude,
                period,
            } => RatePattern::Diurnal {
                mean,
                amplitude,
                period,
            },
        }
    }

    /// Pattern name as used in scenario files.
    pub fn kind(&self) -> &'static str {
        match self {
            PatternSpec::Constant { .. } => "constant",
            PatternSpec::Bursty { .. } => "bursty",
            PatternSpec::Diurnal { .. } => "diurnal",
        }
    }
}

/// Arrival placement, declaratively.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementSpec {
    /// Spread evenly.
    Uniform,
    /// Zipf(`s`) hotspot skew through a seeded node permutation.
    Zipf {
        /// Skew exponent.
        s: f64,
        /// Permutation seed.
        seed: u64,
    },
    /// Fixed node.
    Hotspot {
        /// Target node id.
        node: u32,
    },
    /// Currently heaviest node (the adversary).
    MaxLoaded,
    /// Uniformly random node per round (seeded).
    RandomNode {
        /// RNG seed.
        seed: u64,
    },
}

impl PlacementSpec {
    fn compile(&self, n: usize) -> Placement {
        match *self {
            PlacementSpec::Uniform => Placement::Uniform,
            PlacementSpec::Zipf { s, seed } => Placement::Weighted(zipf_weights(n, s, seed)),
            PlacementSpec::Hotspot { node } => Placement::Hotspot(node),
            PlacementSpec::MaxLoaded => Placement::MaxLoaded,
            PlacementSpec::RandomNode { seed } => {
                Placement::RandomNode(StdRng::seed_from_u64(seed))
            }
        }
    }

    /// Placement name as used in scenario files.
    pub fn kind(&self) -> &'static str {
        match self {
            PlacementSpec::Uniform => "uniform",
            PlacementSpec::Zipf { .. } => "zipf",
            PlacementSpec::Hotspot { .. } => "hotspot",
            PlacementSpec::MaxLoaded => "max-loaded",
            PlacementSpec::RandomNode { .. } => "random-node",
        }
    }
}

/// Service/consumption model, declaratively.
#[derive(Debug, Clone, PartialEq)]
pub enum DrainSpec {
    /// Each node services up to `per_node` per round.
    FixedCapacity {
        /// Per-node capacity per round.
        per_node: f64,
    },
    /// Each node services `fraction` of its load per round.
    Proportional {
        /// Serviced fraction in `[0, 1]`.
        fraction: f64,
    },
}

impl DrainSpec {
    /// Model name as used in scenario files.
    pub fn kind(&self) -> &'static str {
        match self {
            DrainSpec::FixedCapacity { .. } => "fixed-capacity",
            DrainSpec::Proportional { .. } => "proportional",
        }
    }
}

/// One workload component of a scenario, declaratively. Compiled into a
/// [`Workload`] by [`WorkloadSpec::compile`]; a scenario's list compiles
/// into a [`Compose`] applied in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Load arriving into the system.
    Arrivals {
        /// How much per round.
        pattern: PatternSpec,
        /// Where it lands.
        placement: PlacementSpec,
    },
    /// Load serviced out of the system.
    Drain {
        /// The consumption model.
        model: DrainSpec,
    },
}

impl WorkloadSpec {
    /// Spec kind as used in scenario files.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::Arrivals { .. } => "arrivals",
            WorkloadSpec::Drain { .. } => "drain",
        }
    }

    /// Compiles the spec into a runnable workload over `n` nodes.
    pub fn compile<L: ScenarioLoad>(&self, n: usize) -> Box<dyn Workload<L>> {
        match self {
            WorkloadSpec::Arrivals { pattern, placement } => {
                Box::new(Arrivals::new(pattern.compile(), placement.compile(n)))
            }
            WorkloadSpec::Drain { model } => Box::new(match *model {
                DrainSpec::FixedCapacity { per_node } => Drain::fixed_capacity(per_node),
                DrainSpec::Proportional { fraction } => Drain::proportional(fraction),
            }),
        }
    }
}

/// Compiles a scenario's workload list into one composed workload
/// (`None` when the list is empty — a pure convergence run).
pub fn compile_workloads<L: ScenarioLoad>(specs: &[WorkloadSpec], n: usize) -> Option<Compose<L>> {
    if specs.is_empty() {
        None
    } else {
        Some(Compose::new(specs.iter().map(|s| s.compile(n)).collect()))
    }
}

/// How a scenario executes: the engine [`Backend`] carried declaratively
/// (`backend = "serial" | "pool" | "sharded" | "message" | "process"` in
/// scenario files, with `threads`, `shards`, `partition = "range" |
/// "bfs"`, and `transport = "unix" | "tcp"` as applicable — the message
/// and process backends run one worker per shard, so they take
/// `shards`/`partition` but no `threads`, and only the process backend
/// takes `transport`). It is exactly `dlb_core`'s [`Backend`] — plain
/// `Copy` data, so scenarios stay printable, diffable, and replayable.
///
/// ```
/// use dlb_workloads::scenario::exec_spec_from_parts;
/// use dlb_core::engine::Backend;
/// use dlb_core::Transport;
/// use dlb_graphs::PartitionSpec;
///
/// // The scenario-file keys `backend = "process"`, `shards = 4`,
/// // `transport = "unix"` assemble into Backend::Process:
/// let exec = exec_spec_from_parts(
///     Some("process"), None, Some(4), None, None, Some("unix")).unwrap();
/// assert_eq!(exec, Backend::Process {
///     partition: PartitionSpec::Range { shards: 4 },
///     transport: Transport::Unix,
/// });
/// // ...and the gating rules reject nonsensical combinations:
/// assert!(exec_spec_from_parts(
///     Some("serial"), None, None, None, None, Some("tcp")).is_err());
/// ```
pub type ExecSpec = Backend;

/// Maps the legacy `threads` scalar onto an [`ExecSpec`]: `1` = the
/// serial executor (the historical default), anything else = the flat
/// pool (`0` = auto worker count). Scenario files without an explicit
/// `backend` key parse through this, and
/// [`crate::runner::ScenarioRunner::with_threads`] overrides through it.
pub fn exec_from_threads(threads: usize) -> ExecSpec {
    match threads {
        1 => ExecSpec::Serial,
        t => ExecSpec::Pool { threads: t },
    }
}

/// Parses a partition strategy name (`range`, `bfs`) into a
/// [`PartitionSpec`] over `shards ≥ 1`.
pub fn partition_from_name(name: &str, shards: usize) -> Result<PartitionSpec, String> {
    if shards == 0 {
        return Err("sharded/message backends need shards >= 1".into());
    }
    match name {
        "range" => Ok(PartitionSpec::Range { shards }),
        "bfs" => Ok(PartitionSpec::Bfs { shards }),
        other => Err(format!(
            "unknown partition strategy {other:?} (expected range or bfs)"
        )),
    }
}

/// Validates an [`ExecSpec`] (shared by [`Scenario::validate`] and the
/// runner's override path, so a bad programmatic override errors instead
/// of panicking inside the engine constructor).
pub fn validate_exec(exec: &ExecSpec) -> Result<(), String> {
    match exec {
        ExecSpec::Sharded { partition, .. } if partition.shards() == 0 => {
            Err("sharded backend needs shards >= 1".into())
        }
        ExecSpec::Message { partition, .. } if partition.shards() == 0 => {
            Err("message backend needs shards >= 1".into())
        }
        ExecSpec::Process { partition, .. } if partition.shards() == 0 => {
            Err("process backend needs shards >= 1".into())
        }
        _ => Ok(()),
    }
}

/// Assembles an [`ExecSpec`] from the four declarative parts every entry
/// point exposes — the `backend`/`threads`/`shards`/`partition` keys of a
/// scenario file, or the CLI flags of the same names. This is the single
/// home of the gating rules (`shards`/`partition` only with the sharded,
/// message, and process backends, `serial` is one thread, the message and
/// process backends have no `threads` knob at all — one worker per shard,
/// `partition` defaults to `range`, `threads` defaults to auto for
/// pool/sharded, `resident` is a message-backend-only knob, `transport`
/// is a process-backend-only knob defaulting to `unix`), so file parsing
/// and CLI overrides cannot drift apart.
pub fn exec_spec_from_parts(
    backend: Option<&str>,
    threads: Option<usize>,
    shards: Option<usize>,
    partition: Option<&str>,
    resident: Option<bool>,
    transport: Option<&str>,
) -> Result<ExecSpec, String> {
    let reject_shard_keys = || -> Result<(), String> {
        if shards.is_some() || partition.is_some() {
            return Err(
                "shards/partition are only valid with backend = \"sharded\", \"message\", or \"process\""
                    .into(),
            );
        }
        if resident.is_some() {
            return Err("resident is only valid with backend = \"message\"".into());
        }
        if transport.is_some() {
            return Err("transport is only valid with backend = \"process\"".into());
        }
        Ok(())
    };
    let reject_resident = || -> Result<(), String> {
        if resident.is_some() {
            return Err("resident is only valid with backend = \"message\"".into());
        }
        Ok(())
    };
    let reject_transport = || -> Result<(), String> {
        if transport.is_some() {
            return Err("transport is only valid with backend = \"process\"".into());
        }
        Ok(())
    };
    match backend {
        None => {
            reject_shard_keys()?;
            Ok(exec_from_threads(threads.unwrap_or(1)))
        }
        Some("serial") => {
            reject_shard_keys()?;
            if threads.is_some_and(|t| t != 1) {
                return Err("backend \"serial\" runs one thread (drop the threads key or use backend = \"pool\")".into());
            }
            Ok(ExecSpec::Serial)
        }
        Some("pool") => {
            reject_shard_keys()?;
            Ok(ExecSpec::Pool {
                threads: threads.unwrap_or(0),
            })
        }
        Some("sharded") => {
            reject_resident()?;
            reject_transport()?;
            let shards = shards.ok_or("backend \"sharded\" needs shards")?;
            let partition = partition_from_name(partition.unwrap_or("range"), shards)?;
            Ok(ExecSpec::Sharded {
                partition,
                threads: threads.unwrap_or(0),
            })
        }
        Some("message") => {
            reject_transport()?;
            if threads.is_some() {
                return Err(
                    "backend \"message\" runs one worker per shard (drop the threads key)".into(),
                );
            }
            let shards = shards.ok_or("backend \"message\" needs shards")?;
            let partition = partition_from_name(partition.unwrap_or("range"), shards)?;
            Ok(ExecSpec::Message {
                partition,
                resident: resident.unwrap_or(false),
            })
        }
        Some("process") => {
            reject_resident()?;
            if threads.is_some() {
                return Err(
                    "backend \"process\" runs one worker process per shard (drop the threads key)"
                        .into(),
                );
            }
            // Unlike sharded/message, `shards` has a default: the
            // quickstart (`--backend process` alone) should just work,
            // and a fixed count keeps reports reproducible.
            let shards = shards.unwrap_or(8);
            let partition = partition_from_name(partition.unwrap_or("range"), shards)?;
            let transport = transport.unwrap_or("unix").parse::<dlb_core::Transport>()?;
            Ok(ExecSpec::Process {
                partition,
                transport,
            })
        }
        Some(other) => Err(format!(
            "unknown backend {other:?} (expected serial, pool, sharded, message, or process)"
        )),
    }
}

/// Declarative fault injection: shard-level fail/recover churn plus
/// optional executor-level faults, the `[faults]` section of a scenario
/// file and the `--faults` CLI flag.
///
/// Two orthogonal things are driven from one seeded schedule
/// ([`dlb_dynamics::ChurnSchedule`]): every `every` rounds one random
/// shard fails for `down` rounds — its nodes drop out of the round graph
/// (loads frozen, outage semantics on the cut; exact conservation and
/// Φ-monotonicity hold by construction) — and, per the enabled kind
/// flags, a deterministic executor [`dlb_core::FaultPlan`] fires worker
/// panics / dropped / duplicated / reordered halo batches / delays on
/// the same failure rounds. Executor faults are recovered bit-exactly by
/// the engine's supervision and never change the trajectory; shard churn
/// *is* part of the (degraded) trajectory. Together they reproduce the
/// headline guarantee: the run matches a fault-free run over the same
/// effective round sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultsSpec {
    /// A shard failure starts every `every` rounds (when none is
    /// already down).
    pub every: usize,
    /// Each failure lasts `down` consecutive rounds.
    pub down: usize,
    /// Shard count the churn draws from; `0` derives it from the
    /// sharded/message backend's partition (and must match it when both
    /// are set explicitly).
    pub shards: usize,
    /// Seed of the churn schedule (which shard fails when).
    pub seed: u64,
    /// Kill the failed shard's worker on each failure round
    /// (sharded/message backends).
    pub panic: bool,
    /// Drop the failed shard's outgoing halo batches (message backend).
    pub drop: bool,
    /// Duplicate every halo batch of the failed shard (message backend).
    pub duplicate: bool,
    /// Reorder the failed shard's halo batches (message backend).
    pub reorder: bool,
    /// Delay the failed shard's worker by this many milliseconds
    /// (sharded/message backends).
    pub delay_ms: Option<u64>,
}

impl Default for FaultsSpec {
    fn default() -> Self {
        FaultsSpec {
            every: 20,
            down: 3,
            shards: 0,
            seed: 1,
            panic: false,
            drop: false,
            duplicate: false,
            reorder: false,
            delay_ms: None,
        }
    }
}

impl FaultsSpec {
    /// Whether any executor-level fault kind is enabled (as opposed to
    /// pure shard churn).
    pub fn has_exec_kinds(&self) -> bool {
        self.panic || self.drop || self.duplicate || self.reorder || self.delay_ms.is_some()
    }

    /// The enabled executor fault kinds, in canonical order.
    pub fn exec_kinds(&self) -> Vec<dlb_core::FaultKind> {
        let mut kinds = Vec::new();
        if self.panic {
            kinds.push(dlb_core::FaultKind::Panic);
        }
        if self.drop {
            kinds.push(dlb_core::FaultKind::DropHalo);
        }
        if self.duplicate {
            kinds.push(dlb_core::FaultKind::DuplicateHalo);
        }
        if self.reorder {
            kinds.push(dlb_core::FaultKind::ReorderHalo);
        }
        if let Some(ms) = self.delay_ms {
            kinds.push(dlb_core::FaultKind::Delay { ms });
        }
        kinds
    }

    /// Resolves the churn shard count against the backend: an explicit
    /// `shards` wins (but must match a sharded/message partition), `0`
    /// derives from the partition.
    pub fn resolved_shards(&self, exec: &ExecSpec) -> Result<usize, String> {
        let backend_shards = match exec {
            ExecSpec::Sharded { partition, .. } | ExecSpec::Message { partition, .. } => {
                Some(partition.shards())
            }
            _ => None,
        };
        match (self.shards, backend_shards) {
            (0, Some(s)) => Ok(s),
            (0, None) => {
                Err("faults need an explicit shards count on the serial/pool backends".into())
            }
            (s, Some(b)) if s != b => Err(format!(
                "faults shards ({s}) must match the backend's shard count ({b})"
            )),
            (s, _) => Ok(s),
        }
    }

    /// Replays the seeded churn schedule over `max_rounds` and compiles
    /// the executor [`dlb_core::FaultPlan`]: failure `i` (starting at
    /// round `T` on shard `s`) fires the `i mod k`-th of the `k` enabled
    /// kinds at round `T` on shard `s`. Deterministic — the same spec
    /// always arms the same plan, and the runner replays the same
    /// schedule for its churn counters.
    pub fn fault_plan(&self, shards: usize, max_rounds: usize) -> dlb_core::FaultPlan {
        let kinds = self.exec_kinds();
        let mut plan = dlb_core::FaultPlan::new();
        if kinds.is_empty() {
            return plan;
        }
        let mut sched = dlb_dynamics::ChurnSchedule::new(self.every, self.down, shards, self.seed);
        let mut failures = 0usize;
        for round in 1..=max_rounds as u64 {
            let before = sched.failures();
            let failed = sched.advance();
            if sched.failures() > before {
                let shard = failed.expect("a new failure names a shard");
                plan = plan.event(round, shard, kinds[failures % kinds.len()]);
                failures += 1;
            }
        }
        plan
    }

    /// Parses the CLI's compact `--faults` spec string, e.g.
    /// `"every=40,down=5,seed=7,panic,drop,delay=3"`: bare words enable
    /// executor fault kinds, `key=value` pairs set the churn numbers
    /// (`every`, `down`, `shards`, `seed`) or the delay (`delay`, in
    /// milliseconds). An empty string selects the defaults — pure shard
    /// churn with no executor faults.
    pub fn from_arg(spec: &str) -> Result<FaultsSpec, String> {
        let mut f = FaultsSpec::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match part.split_once('=') {
                None => match part {
                    "panic" => f.panic = true,
                    "drop" => f.drop = true,
                    "duplicate" => f.duplicate = true,
                    "reorder" => f.reorder = true,
                    other => {
                        return Err(format!(
                            "unknown fault flag {other:?} (expected panic, drop, \
                             duplicate, or reorder)"
                        ))
                    }
                },
                Some((key, value)) => {
                    let num = || {
                        value
                            .trim()
                            .parse::<u64>()
                            .map_err(|_| format!("fault key {key} needs an integer, got {value:?}"))
                    };
                    match key.trim() {
                        "every" => f.every = num()? as usize,
                        "down" => f.down = num()? as usize,
                        "shards" => f.shards = num()? as usize,
                        "seed" => f.seed = num()?,
                        "delay" => f.delay_ms = Some(num()?),
                        other => {
                            return Err(format!(
                                "unknown fault key {other:?} (expected every, down, \
                                 shards, seed, or delay)"
                            ))
                        }
                    }
                }
            }
        }
        Ok(f)
    }
}

/// Span-recording spec: the `[telemetry]` section of a scenario file
/// (and what the scenarios example's `--trace` flag arms implicitly).
///
/// An enabled spec arms the engine with a [`dlb_telemetry::Telemetry`]
/// recorder — one ring-buffer lane per shard worker plus the engine lane
/// — so the run's report carries per-phase time totals and the per-shard
/// round-time imbalance, and the raw trace can be exported as
/// `dlb-trace/1` JSONL or a Chrome `trace_event` file. Recording never
/// touches loads: a traced run's trajectory is bit-identical to an
/// untraced one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Arm span recording for the run (`enabled = false` keeps the spec
    /// in the file but runs untraced).
    pub enabled: bool,
    /// Per-lane ring capacity: spans retained per lane before the oldest
    /// are overwritten (and counted as dropped).
    pub buffer: usize,
    /// Histogram bin count for the per-phase duration summaries.
    pub bins: usize,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec {
            enabled: true,
            buffer: dlb_telemetry::DEFAULT_CAPACITY,
            bins: dlb_telemetry::DEFAULT_BINS,
        }
    }
}

impl TelemetrySpec {
    /// Shard-lane count the recorder needs under `exec`: the partition's
    /// shard count on the sharded/message/process backends, none on
    /// serial/pool (their spans all land on the engine lane).
    pub fn lanes(exec: &ExecSpec) -> usize {
        match exec {
            ExecSpec::Sharded { partition, .. }
            | ExecSpec::Message { partition, .. }
            | ExecSpec::Process { partition, .. } => partition.shards(),
            _ => 0,
        }
    }

    /// Builds the armed telemetry handle for `exec` (or
    /// [`dlb_telemetry::Telemetry::Off`] when the spec is disabled).
    pub fn armed(&self, exec: &ExecSpec) -> dlb_telemetry::Telemetry {
        if !self.enabled {
            return dlb_telemetry::Telemetry::Off;
        }
        dlb_telemetry::Telemetry::armed(Self::lanes(exec), self.buffer)
    }
}

/// When a scenario run ends.
#[derive(Debug, Clone, PartialEq)]
pub enum StopSpec {
    /// Exactly `rounds` rounds.
    Rounds {
        /// Round budget.
        rounds: usize,
    },
    /// Until the potential (Φ, or Φ̂ for discrete protocols) drops to
    /// `target`, capped at `max_rounds`.
    PhiBelow {
        /// Potential target.
        target: f64,
        /// Round budget.
        max_rounds: usize,
    },
    /// Until the potential is *steady*: over the last `window` rounds,
    /// `max(Φ) − min(Φ) ≤ tol · max(|mean(Φ)|, 1)`. This is the stop for
    /// arrival-rate vs. drain-rate regimes, where Φ plateaus at a
    /// workload-determined band instead of converging to a target.
    SteadyState {
        /// Trailing window length (rounds).
        window: usize,
        /// Relative band tolerance.
        tol: f64,
        /// Round budget.
        max_rounds: usize,
    },
}

impl StopSpec {
    /// The hard round budget of the condition.
    pub fn max_rounds(&self) -> usize {
        match *self {
            StopSpec::Rounds { rounds } => rounds,
            StopSpec::PhiBelow { max_rounds, .. } | StopSpec::SteadyState { max_rounds, .. } => {
                max_rounds
            }
        }
    }

    /// Condition name as used in scenario files.
    pub fn kind(&self) -> &'static str {
        match self {
            StopSpec::Rounds { .. } => "rounds",
            StopSpec::PhiBelow { .. } => "phi",
            StopSpec::SteadyState { .. } => "steady",
        }
    }
}

/// A complete, replayable description of one end-to-end run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (reports, tables, `--name` lookup).
    pub name: String,
    /// The ground topology.
    pub topology: TopologySpec,
    /// Dynamic-network model over the topology; `None` = fixed network.
    pub sequence: Option<SequenceSpec>,
    /// The balancing protocol.
    pub protocol: ProtocolSpec,
    /// Initial load distribution.
    pub init: InitSpec,
    /// Online workload components, applied in order between rounds.
    pub workloads: Vec<WorkloadSpec>,
    /// Engine statistics mode.
    pub stats: StatsMode,
    /// Execution backend (serial / pool / sharded). Trajectories are
    /// bit-identical across backends; this only chooses the executor.
    pub exec: ExecSpec,
    /// Fault injection: shard fail/recover churn plus executor faults;
    /// `None` = fault-free.
    pub faults: Option<FaultsSpec>,
    /// Span recording: per-phase round tracing and trace export;
    /// `None` = untraced (the zero-cost default).
    pub telemetry: Option<TelemetrySpec>,
    /// Stop condition.
    pub stop: StopSpec,
}

impl Scenario {
    /// A minimal scenario: fixed network, no workload, full stats, serial
    /// executor, 100-round budget. Shape it with the `with_*` builders.
    pub fn new(name: impl Into<String>, topology: TopologySpec, protocol: ProtocolSpec) -> Self {
        Scenario {
            name: name.into(),
            topology,
            sequence: None,
            protocol,
            init: InitSpec {
                dist: init::Workload::Spike,
                avg: 100.0,
                seed: 1,
            },
            workloads: Vec::new(),
            stats: StatsMode::Full,
            exec: ExecSpec::Serial,
            faults: None,
            telemetry: None,
            stop: StopSpec::Rounds { rounds: 100 },
        }
    }

    /// Sets the dynamic-network model.
    pub fn with_sequence(mut self, sequence: SequenceSpec) -> Self {
        self.sequence = Some(sequence);
        self
    }

    /// Sets the initial load distribution.
    pub fn with_init(mut self, dist: init::Workload, avg: f64, seed: u64) -> Self {
        self.init = InitSpec { dist, avg, seed };
        self
    }

    /// Appends a workload component.
    pub fn with_workload(mut self, spec: WorkloadSpec) -> Self {
        self.workloads.push(spec);
        self
    }

    /// Sets the statistics mode.
    pub fn with_stats(mut self, stats: StatsMode) -> Self {
        self.stats = stats;
        self
    }

    /// Sets the executor from the legacy `threads` scalar (see
    /// [`exec_from_threads`]).
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_exec(exec_from_threads(threads))
    }

    /// Sets the execution backend.
    pub fn with_exec(mut self, exec: ExecSpec) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the stop condition.
    pub fn with_stop(mut self, stop: StopSpec) -> Self {
        self.stop = stop;
        self
    }

    /// Sets the fault-injection spec.
    pub fn with_faults(mut self, faults: FaultsSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Sets the span-recording spec.
    pub fn with_telemetry(mut self, telemetry: TelemetrySpec) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Validates cross-field consistency; [`Scenario::run`] calls this
    /// first, and the parser calls it after assembling a file.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.topology.n();
        if n == 0 {
            return Err("topology has zero nodes".into());
        }
        if matches!(self.protocol, ProtocolSpec::Heterogeneous { .. }) && self.sequence.is_some() {
            return Err(
                "heterogeneous protocol runs on fixed networks only (remove [sequence])".into(),
            );
        }
        if let Some(seq) = &self.sequence {
            if let SequenceKind::Iid { p, .. } = seq.kind {
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("sequence p must be in [0, 1], got {p}"));
                }
            }
            if let SequenceKind::Markov {
                p_fail, p_recover, ..
            } = seq.kind
            {
                if !(0.0..=1.0).contains(&p_fail) || !(0.0..=1.0).contains(&p_recover) {
                    return Err("markov probabilities must be in [0, 1]".into());
                }
            }
            if seq.outage_every == Some(0) {
                return Err("outage_every must be >= 1".into());
            }
        }
        if let ProtocolSpec::Heterogeneous { capacities } = &self.protocol {
            match *capacities {
                CapacitySpec::TwoTier {
                    fast_fraction,
                    ratio,
                } => {
                    if !(0.0..=1.0).contains(&fast_fraction) || fast_fraction == 0.0 {
                        return Err("fast_fraction must be in (0, 1]".into());
                    }
                    if ratio <= 0.0 {
                        return Err("capacity ratio must be positive".into());
                    }
                }
                CapacitySpec::Ramp { ratio } if ratio <= 0.0 => {
                    return Err("capacity ratio must be positive".into());
                }
                _ => {}
            }
        }
        if self.init.avg < 0.0 {
            return Err("init avg must be non-negative".into());
        }
        for w in &self.workloads {
            match w {
                WorkloadSpec::Arrivals { placement, .. } => match *placement {
                    PlacementSpec::Hotspot { node } if node as usize >= n => {
                        return Err(format!("hotspot node {node} out of range (n = {n})"));
                    }
                    PlacementSpec::Zipf { s, .. } if s < 0.0 => {
                        return Err("zipf exponent must be non-negative".into());
                    }
                    _ => {}
                },
                WorkloadSpec::Drain { model } => match *model {
                    DrainSpec::FixedCapacity { per_node } if per_node < 0.0 => {
                        return Err("drain capacity must be non-negative".into());
                    }
                    DrainSpec::Proportional { fraction } if !(0.0..=1.0).contains(&fraction) => {
                        return Err("drain fraction must be in [0, 1]".into());
                    }
                    _ => {}
                },
            }
        }
        match self.stop {
            StopSpec::Rounds { rounds: 0 } => return Err("stop rounds must be >= 1".into()),
            StopSpec::SteadyState { window, tol, .. } => {
                if window < 2 {
                    return Err("steady-state window must be >= 2".into());
                }
                if tol <= 0.0 {
                    return Err("steady-state tol must be positive".into());
                }
            }
            _ => {}
        }
        if let StatsMode::EveryK(k) = self.stats {
            if k == 0 {
                return Err("stats every:k needs k >= 1".into());
            }
        }
        validate_exec(&self.exec)?;
        if let Some(faults) = &self.faults {
            if matches!(self.protocol, ProtocolSpec::Heterogeneous { .. }) {
                return Err(
                    "heterogeneous protocol runs on fixed networks only (remove [faults])".into(),
                );
            }
            if faults.every == 0 {
                return Err("faults every must be >= 1".into());
            }
            if faults.down == 0 {
                return Err("faults down must be >= 1".into());
            }
            if matches!(self.exec, ExecSpec::Process { .. }) {
                return Err(
                    "faults are not supported on the process backend (use backend = \"message\")"
                        .into(),
                );
            }
            let message = matches!(self.exec, ExecSpec::Message { .. });
            let sharded = matches!(self.exec, ExecSpec::Sharded { .. });
            if matches!(self.exec, ExecSpec::Message { resident: true, .. }) {
                return Err(
                    "faults need the snapshot-based message backend (drop resident = true)".into(),
                );
            }
            if (faults.panic || faults.delay_ms.is_some()) && !(sharded || message) {
                return Err("faults panic/delay need backend = \"sharded\" or \"message\"".into());
            }
            if (faults.drop || faults.duplicate || faults.reorder) && !message {
                return Err("faults drop/duplicate/reorder need backend = \"message\"".into());
            }
            faults.resolved_shards(&self.exec)?;
        }
        if let Some(telemetry) = &self.telemetry {
            if telemetry.buffer == 0 {
                return Err("telemetry buffer must be >= 1".into());
            }
            if telemetry.bins == 0 {
                return Err("telemetry bins must be >= 1".into());
            }
        }
        Ok(())
    }

    /// Names of the built-in scenarios (see [`Scenario::builtin`]).
    pub fn builtin_names() -> &'static [&'static str] {
        &[
            "bursty-torus",
            "bursty-torus-sharded",
            "bursty-torus-message",
            "bursty-torus-resident",
            "bursty-torus-process",
            "zipf-hypercube-drain",
            "diurnal-cycle",
            "adversarial-hetero",
            "churn-markov",
            "churn-shards-message",
        ]
    }

    /// Looks up a built-in scenario by name. These are the library's
    /// canonical regimes — used by the example CLI, the CI smoke job, and
    /// the scenario benches:
    ///
    /// * `bursty-torus` — continuous diffusion on a 16×16 torus under
    ///   on/off bursts with proportional service; runs to steady state;
    /// * `bursty-torus-sharded` — the same regime on the sharded backend
    ///   (8 BFS-grown shards, 2 workers); its trajectory is bit-identical
    ///   to `bursty-torus`, which the CI cross-backend matrix asserts;
    /// * `bursty-torus-message` — the same regime on the message-passing
    ///   backend (8 BFS-grown shard workers, halo values crossing shards
    ///   only as batched messages); trajectory bit-identical to
    ///   `bursty-torus`, with per-round communication totals in its
    ///   report;
    /// * `bursty-torus-resident` — `bursty-torus-message` with
    ///   shard-resident rounds: workers keep their owned loads across
    ///   rounds, the coordinator routes workload deltas by owner and
    ///   collects owned values only on stats/read rounds; trajectory
    ///   still bit-identical to `bursty-torus`;
    /// * `bursty-torus-process` — the same regime on the process backend
    ///   (8 BFS-grown shard worker *processes* over Unix-domain sockets
    ///   speaking `dlb-wire/1`); trajectory bit-identical to
    ///   `bursty-torus`, with wire-level byte counters in its report;
    /// * `zipf-hypercube-drain` — discrete tokens on `Q_8` with Zipf
    ///   hotspot arrivals against a fixed per-node service capacity;
    /// * `diurnal-cycle` — continuous diffusion on a cycle under a
    ///   diurnal sine wave;
    /// * `adversarial-hetero` — heterogeneous two-tier cluster with an
    ///   adversary re-injecting at the heaviest node;
    /// * `churn-markov` — continuous diffusion over Markov edge churn
    ///   with constant arrivals and proportional service;
    /// * `churn-shards-message` — the `bursty-torus-message` regime under
    ///   shard fail/recover churn (one of the 8 shards down for 5 rounds
    ///   every 40) with worker panics and dropped halo batches injected
    ///   on each failure round; the report carries the fault/recovery
    ///   counters, and the engine's supervision keeps the trajectory
    ///   bit-identical to a fault-free run over the same degraded
    ///   sequence.
    pub fn builtin(name: &str) -> Option<Scenario> {
        let s = match name {
            "bursty-torus" => Scenario::new(
                "bursty-torus",
                TopologySpec::Torus2d { rows: 16, cols: 16 },
                ProtocolSpec::Continuous,
            )
            .with_init(init::Workload::Spike, 100.0, 1)
            .with_workload(WorkloadSpec::Arrivals {
                pattern: PatternSpec::Bursty {
                    high: 2048.0,
                    low: 0.0,
                    on_rounds: 20,
                    off_rounds: 40,
                },
                placement: PlacementSpec::Uniform,
            })
            .with_workload(WorkloadSpec::Drain {
                model: DrainSpec::Proportional { fraction: 0.02 },
            })
            .with_stop(StopSpec::SteadyState {
                window: 60,
                tol: 0.2,
                max_rounds: 2000,
            }),
            "bursty-torus-sharded" => {
                let mut s = Scenario::builtin("bursty-torus").expect("base builtin exists");
                s.name = "bursty-torus-sharded".into();
                s.with_exec(ExecSpec::Sharded {
                    partition: PartitionSpec::Bfs { shards: 8 },
                    threads: 2,
                })
            }
            "bursty-torus-message" => {
                let mut s = Scenario::builtin("bursty-torus").expect("base builtin exists");
                s.name = "bursty-torus-message".into();
                s.with_exec(ExecSpec::Message {
                    partition: PartitionSpec::Bfs { shards: 8 },
                    resident: false,
                })
            }
            "bursty-torus-resident" => {
                let mut s = Scenario::builtin("bursty-torus").expect("base builtin exists");
                s.name = "bursty-torus-resident".into();
                s.with_exec(ExecSpec::Message {
                    partition: PartitionSpec::Bfs { shards: 8 },
                    resident: true,
                })
            }
            "bursty-torus-process" => {
                let mut s = Scenario::builtin("bursty-torus").expect("base builtin exists");
                s.name = "bursty-torus-process".into();
                s.with_exec(ExecSpec::Process {
                    partition: PartitionSpec::Bfs { shards: 8 },
                    transport: dlb_core::Transport::Unix,
                })
            }
            "zipf-hypercube-drain" => Scenario::new(
                "zipf-hypercube-drain",
                TopologySpec::Hypercube { dim: 8 },
                ProtocolSpec::Discrete,
            )
            .with_init(init::Workload::Balanced, 50.0, 1)
            .with_workload(WorkloadSpec::Arrivals {
                pattern: PatternSpec::Constant { per_round: 300.0 },
                placement: PlacementSpec::Zipf { s: 1.1, seed: 5 },
            })
            .with_workload(WorkloadSpec::Drain {
                model: DrainSpec::FixedCapacity { per_node: 1.2 },
            })
            .with_stop(StopSpec::Rounds { rounds: 300 }),
            "diurnal-cycle" => Scenario::new(
                "diurnal-cycle",
                TopologySpec::Cycle { n: 64 },
                ProtocolSpec::Continuous,
            )
            .with_init(init::Workload::Balanced, 10.0, 1)
            .with_workload(WorkloadSpec::Arrivals {
                pattern: PatternSpec::Diurnal {
                    mean: 64.0,
                    amplitude: 0.9,
                    period: 48,
                },
                placement: PlacementSpec::Uniform,
            })
            .with_workload(WorkloadSpec::Drain {
                model: DrainSpec::Proportional { fraction: 0.1 },
            })
            .with_stop(StopSpec::Rounds { rounds: 480 }),
            "adversarial-hetero" => Scenario::new(
                "adversarial-hetero",
                TopologySpec::Torus2d { rows: 8, cols: 8 },
                ProtocolSpec::Heterogeneous {
                    capacities: CapacitySpec::TwoTier {
                        fast_fraction: 0.25,
                        ratio: 4.0,
                    },
                },
            )
            .with_init(init::Workload::Bimodal, 50.0, 1)
            .with_workload(WorkloadSpec::Arrivals {
                pattern: PatternSpec::Constant { per_round: 256.0 },
                placement: PlacementSpec::MaxLoaded,
            })
            .with_workload(WorkloadSpec::Drain {
                model: DrainSpec::FixedCapacity { per_node: 5.0 },
            })
            .with_stop(StopSpec::Rounds { rounds: 300 }),
            "churn-markov" => Scenario::new(
                "churn-markov",
                TopologySpec::RandomRegular {
                    n: 128,
                    d: 6,
                    seed: 9,
                },
                ProtocolSpec::Continuous,
            )
            .with_sequence(SequenceSpec {
                kind: SequenceKind::Markov {
                    p_fail: 0.2,
                    p_recover: 0.5,
                    seed: 13,
                },
                outage_every: None,
            })
            .with_init(init::Workload::UniformRandom, 20.0, 3)
            .with_workload(WorkloadSpec::Arrivals {
                pattern: PatternSpec::Constant { per_round: 640.0 },
                placement: PlacementSpec::RandomNode { seed: 21 },
            })
            .with_workload(WorkloadSpec::Drain {
                model: DrainSpec::Proportional { fraction: 0.25 },
            })
            .with_stop(StopSpec::SteadyState {
                window: 40,
                tol: 0.5,
                max_rounds: 1000,
            }),
            "churn-shards-message" => {
                let mut s = Scenario::builtin("bursty-torus-message").expect("base builtin exists");
                s.name = "churn-shards-message".into();
                s.with_faults(FaultsSpec {
                    every: 40,
                    down: 5,
                    seed: 7,
                    panic: true,
                    drop: true,
                    ..FaultsSpec::default()
                })
                .with_stop(StopSpec::Rounds { rounds: 240 })
            }
            _ => return None,
        };
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_all_validate() {
        for name in Scenario::builtin_names() {
            let s = Scenario::builtin(name).expect("builtin exists");
            assert_eq!(&s.name, name);
            s.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(Scenario::builtin("no-such-scenario").is_none());
    }

    #[test]
    fn topology_specs_build_with_expected_sizes() {
        let specs = [
            TopologySpec::Path { n: 7 },
            TopologySpec::Cycle { n: 9 },
            TopologySpec::Grid2d { rows: 3, cols: 5 },
            TopologySpec::Torus2d { rows: 4, cols: 4 },
            TopologySpec::Hypercube { dim: 5 },
            TopologySpec::Complete { n: 11 },
            TopologySpec::Star { n: 6 },
            TopologySpec::DeBruijn { dim: 4 },
            TopologySpec::RandomRegular {
                n: 20,
                d: 4,
                seed: 2,
            },
        ];
        for spec in specs {
            assert_eq!(spec.build().n(), spec.n(), "{}", spec.kind());
        }
    }

    #[test]
    fn capacity_specs_build() {
        let caps = CapacitySpec::TwoTier {
            fast_fraction: 0.25,
            ratio: 4.0,
        }
        .build(8);
        assert_eq!(caps, vec![4.0, 4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let ramp = CapacitySpec::Ramp { ratio: 3.0 }.build(3);
        assert_eq!(ramp, vec![1.0, 2.0, 3.0]);
        assert_eq!(CapacitySpec::Uniform.build(2), vec![1.0, 1.0]);
    }

    #[test]
    fn validation_rejects_bad_scenarios() {
        let base = Scenario::new("t", TopologySpec::Cycle { n: 8 }, ProtocolSpec::Continuous);
        assert!(base.validate().is_ok());
        let hetero_dynamic = Scenario::new(
            "t",
            TopologySpec::Cycle { n: 8 },
            ProtocolSpec::Heterogeneous {
                capacities: CapacitySpec::Uniform,
            },
        )
        .with_sequence(SequenceSpec {
            kind: SequenceKind::Static,
            outage_every: None,
        });
        assert!(hetero_dynamic.validate().is_err());
        let bad_hotspot = base.clone().with_workload(WorkloadSpec::Arrivals {
            pattern: PatternSpec::Constant { per_round: 1.0 },
            placement: PlacementSpec::Hotspot { node: 8 },
        });
        assert!(bad_hotspot.validate().is_err());
        let bad_drain = base.clone().with_workload(WorkloadSpec::Drain {
            model: DrainSpec::Proportional { fraction: 1.5 },
        });
        assert!(bad_drain.validate().is_err());
        let bad_stop = base.clone().with_stop(StopSpec::SteadyState {
            window: 1,
            tol: 0.1,
            max_rounds: 10,
        });
        assert!(bad_stop.validate().is_err());
        let zero_rounds = base.with_stop(StopSpec::Rounds { rounds: 0 });
        assert!(zero_rounds.validate().is_err());
    }

    #[test]
    fn faults_spec_parses_the_cli_arg_and_validates() {
        let f = FaultsSpec::from_arg("every=40, down=5, seed=7, panic, drop, delay=3").unwrap();
        assert_eq!(f.every, 40);
        assert_eq!(f.down, 5);
        assert_eq!(f.seed, 7);
        assert!(f.panic && f.drop && !f.duplicate && !f.reorder);
        assert_eq!(f.delay_ms, Some(3));
        assert_eq!(FaultsSpec::from_arg("").unwrap(), FaultsSpec::default());
        assert!(FaultsSpec::from_arg("panik").is_err());
        assert!(FaultsSpec::from_arg("every=lots").is_err());
        assert!(FaultsSpec::from_arg("budget=3").is_err());

        // Validation gates kinds on the backend and churn on homogeneity.
        let base = Scenario::new("t", TopologySpec::Cycle { n: 8 }, ProtocolSpec::Continuous);
        let churn_no_shards = base.clone().with_faults(FaultsSpec::default());
        assert!(
            churn_no_shards.validate().is_err(),
            "serial backend needs an explicit shards count"
        );
        let churn = base.clone().with_faults(FaultsSpec {
            shards: 4,
            ..FaultsSpec::default()
        });
        assert!(churn.validate().is_ok(), "{:?}", churn.validate());
        let panic_serial = base.clone().with_faults(FaultsSpec {
            shards: 4,
            panic: true,
            ..FaultsSpec::default()
        });
        assert!(panic_serial.validate().is_err(), "panic needs workers");
        let zero_every = base.with_faults(FaultsSpec {
            every: 0,
            shards: 4,
            ..FaultsSpec::default()
        });
        assert!(zero_every.validate().is_err());
        let hetero = Scenario::new(
            "t",
            TopologySpec::Cycle { n: 8 },
            ProtocolSpec::Heterogeneous {
                capacities: CapacitySpec::Uniform,
            },
        )
        .with_faults(FaultsSpec {
            shards: 4,
            ..FaultsSpec::default()
        });
        assert!(hetero.validate().is_err(), "faults are homogeneous-only");
    }

    #[test]
    fn fault_plan_is_deterministic_and_cycles_kinds() {
        let f = FaultsSpec {
            every: 5,
            down: 2,
            shards: 4,
            seed: 3,
            panic: true,
            drop: true,
            ..FaultsSpec::default()
        };
        let plan = f.fault_plan(4, 30);
        let again = f.fault_plan(4, 30);
        assert_eq!(plan.events(), again.events(), "same spec, same plan");
        // Failures at rounds 5, 10, …, 30 alternate panic/drop.
        assert_eq!(plan.len(), 6);
        for (i, ev) in plan.events().iter().enumerate() {
            assert_eq!(ev.round, 5 * (i as u64 + 1));
            assert!(ev.shard < 4);
            let expect = if i % 2 == 0 {
                dlb_core::FaultKind::Panic
            } else {
                dlb_core::FaultKind::DropHalo
            };
            assert_eq!(ev.kind, expect, "failure {i}");
        }
    }

    #[test]
    fn sequence_spec_builds_all_kinds() {
        let g = topology::cycle(6);
        for (kind, expect_name) in [
            (SequenceKind::Static, "static"),
            (SequenceKind::Iid { p: 0.5, seed: 1 }, "iid-subgraph"),
            (
                SequenceKind::Markov {
                    p_fail: 0.1,
                    p_recover: 0.9,
                    seed: 1,
                },
                "markov-churn",
            ),
            (SequenceKind::MatchingOnly { seed: 1 }, "matching-only"),
        ] {
            let spec = SequenceSpec {
                kind,
                outage_every: None,
            };
            let mut seq = spec.build(g.clone());
            assert_eq!(seq.name(), expect_name);
            assert_eq!(seq.n(), 6);
            seq.next_graph();
        }
        let outage = SequenceSpec {
            kind: SequenceKind::Static,
            outage_every: Some(2),
        };
        let mut seq = outage.build(g);
        assert_eq!(seq.name(), "outage");
        assert_eq!(seq.next_graph().m(), 6);
        assert_eq!(seq.next_graph().m(), 0);
    }
}
