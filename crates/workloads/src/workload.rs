//! Online workload models: load that *arrives* and *completes* while the
//! balancer runs.
//!
//! The paper (and everything else in this workspace until now) balances a
//! fixed total: an initial vector diffuses until its potential hits a
//! target. Real deployments balance **while work flows through the
//! system** — requests arrive (often skewed onto a few hot nodes), each
//! node drains what its service capacity allows, and the interesting
//! steady states are set by the arrival/drain balance, not by the initial
//! condition. This module describes that traffic:
//!
//! * a [`Workload`] is applied once per round, *between* engine rounds,
//!   mutating the load vector in place (the engine's zero-copy ping-pong
//!   is untouched — the front buffer is shaped before the next gather);
//! * every model is **deterministic under its seed** and is applied by a
//!   single thread, so a scenario's trajectory is bit-identical across
//!   engine thread counts — the workspace's serial ≡ parallel invariant
//!   extends to online workloads;
//! * all models are generic over the load type through [`ScenarioLoad`]:
//!   `f64` passes amounts through exactly, `i64` tokens are quantized by
//!   cumulative rounding (a running carry), so long-run injected totals
//!   track the requested rates exactly even for fractional rates.
//!
//! The generators mirror the regimes the online load-balancing literature
//! studies: constant-rate arrivals, bursty on/off sources, Zipf/hotspot
//! skew (heavy traffic concentrated on few nodes), diurnal sine waves,
//! an adversary that re-injects at the currently heaviest node, and
//! fixed-capacity / proportional service drains. [`Compose`] chains any
//! of them into one workload.

use dlb_core::engine::LoadPotential;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Totals moved in and out of the system by one workload application.
///
/// Values are reported in load units as `f64`; for token workloads they
/// are exact integers (tokens fit comfortably in the `f64` mantissa), so
/// the conservation identity `Δtotal ≡ injected − consumed` holds exactly
/// for the discrete model and to rounding error for the continuous one.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkloadDelta {
    /// Load injected into the system this application.
    pub injected: f64,
    /// Load consumed (serviced) out of the system this application.
    pub consumed: f64,
}

impl WorkloadDelta {
    /// Componentwise sum, used by [`Compose`] and per-run accumulation.
    pub fn merge(self, other: WorkloadDelta) -> WorkloadDelta {
        WorkloadDelta {
            injected: self.injected + other.injected,
            consumed: self.consumed + other.consumed,
        }
    }

    /// Net change `injected − consumed`.
    pub fn net(self) -> f64 {
        self.injected - self.consumed
    }
}

/// Scenario-level context handed to every workload application.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadCtx {
    /// Total load of the initial vector (before any workload ran), for
    /// models that scale their rates to the system's starting size.
    pub initial_total: f64,
}

/// Load types an online workload can shape: the engine's two load scalars.
///
/// The quantization contract is the heart of discrete determinism:
/// [`ScenarioLoad::quantize`] converts a fractional amount into the load
/// type while threading a running `carry` of the unrepresentable
/// remainder. For `f64` the amount passes through untouched; for `i64`
/// the floor of `amount + carry` is taken and the fraction stays in the
/// carry — cumulative rounding, so a rate of 0.3 tokens/round injects 3
/// tokens every 10 rounds instead of rounding to zero forever.
pub trait ScenarioLoad:
    LoadPotential + Copy + Default + PartialEq + Send + Sync + std::fmt::Debug + 'static
{
    /// Quantizes `amount + *carry`, leaving the remainder in `carry`.
    fn quantize(amount: f64, carry: &mut f64) -> Self;

    /// `self + delta`.
    fn add(self, delta: Self) -> Self;

    /// Removes up to `cap` (never driving the load below zero); returns
    /// the amount actually removed.
    fn drain_capped(&mut self, cap: Self) -> Self;

    /// Removes `frac` of the (non-negative part of the) load — floored
    /// for tokens; returns the amount removed.
    fn drain_fraction(&mut self, frac: f64) -> Self;

    /// The load as `f64` (exact for tokens within the mantissa).
    fn to_f64(self) -> f64;

    /// Serial sum of a load vector as `f64`.
    fn total(loads: &[Self]) -> f64;
}

impl ScenarioLoad for f64 {
    #[inline]
    fn quantize(amount: f64, _carry: &mut f64) -> f64 {
        amount
    }

    #[inline]
    fn add(self, delta: f64) -> f64 {
        self + delta
    }

    #[inline]
    fn drain_capped(&mut self, cap: f64) -> f64 {
        let take = cap.min(*self).max(0.0);
        *self -= take;
        take
    }

    #[inline]
    fn drain_fraction(&mut self, frac: f64) -> f64 {
        let take = self.max(0.0) * frac;
        *self -= take;
        take
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    fn total(loads: &[f64]) -> f64 {
        loads.iter().sum()
    }
}

impl ScenarioLoad for i64 {
    #[inline]
    fn quantize(amount: f64, carry: &mut f64) -> i64 {
        let with_carry = amount + *carry;
        let whole = with_carry.floor();
        *carry = with_carry - whole;
        whole as i64
    }

    #[inline]
    fn add(self, delta: i64) -> i64 {
        self + delta
    }

    #[inline]
    fn drain_capped(&mut self, cap: i64) -> i64 {
        let take = cap.min(*self).max(0);
        *self -= take;
        take
    }

    #[inline]
    fn drain_fraction(&mut self, frac: f64) -> i64 {
        let take = ((*self).max(0) as f64 * frac).floor() as i64;
        *self -= take;
        take
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    fn total(loads: &[i64]) -> f64 {
        loads.iter().map(|&x| x as f64).sum()
    }
}

/// One online workload model: applied once per scenario round, mutating
/// the load vector in place and reporting the totals it moved.
///
/// Implementations must be deterministic functions of `(self, round,
/// loads)` — any randomness comes from a seeded RNG owned by the model —
/// so scenario trajectories replay bit-identically.
pub trait Workload<L: ScenarioLoad> {
    /// Model name for reports and tables.
    fn name(&self) -> &str;

    /// Applies the round's arrivals/consumption to `loads` (rounds count
    /// from 1, matching the drivers) and returns the totals moved.
    fn apply(&mut self, round: u64, loads: &mut [L], ctx: &WorkloadCtx) -> WorkloadDelta;
}

/// Per-round total arrival rate as a function of the round number.
#[derive(Debug, Clone, PartialEq)]
pub enum RatePattern {
    /// The same total every round.
    Constant {
        /// Load injected per round (summed over all nodes).
        per_round: f64,
    },
    /// On/off bursts: `on_rounds` at `high`, then `off_rounds` at `low`,
    /// repeating (phase starts "on" at round 1).
    OnOff {
        /// Rate during the burst.
        high: f64,
        /// Rate between bursts (often 0).
        low: f64,
        /// Burst length in rounds.
        on_rounds: u64,
        /// Gap length in rounds.
        off_rounds: u64,
    },
    /// Diurnal sine wave `mean · (1 + amplitude · sin(2π·t/period))`,
    /// clamped at zero (an amplitude > 1 models a dead trough).
    Diurnal {
        /// Mean rate per round.
        mean: f64,
        /// Relative swing around the mean.
        amplitude: f64,
        /// Wave period in rounds.
        period: u64,
    },
}

impl RatePattern {
    /// The total to inject in round `round` (1-based).
    pub fn rate(&self, round: u64) -> f64 {
        match *self {
            RatePattern::Constant { per_round } => per_round,
            RatePattern::OnOff {
                high,
                low,
                on_rounds,
                off_rounds,
            } => {
                let period = (on_rounds + off_rounds).max(1);
                if (round - 1) % period < on_rounds {
                    high
                } else {
                    low
                }
            }
            RatePattern::Diurnal {
                mean,
                amplitude,
                period,
            } => {
                let phase = 2.0 * std::f64::consts::PI * ((round - 1) % period.max(1)) as f64
                    / period.max(1) as f64;
                (mean * (1.0 + amplitude * phase.sin())).max(0.0)
            }
        }
    }
}

/// Where a round's arrival total lands.
#[derive(Debug)]
pub enum Placement {
    /// Spread evenly over all nodes.
    Uniform,
    /// Spread by fixed per-node weights (normalized at construction);
    /// [`zipf_weights`] builds the canonical heavy-tail instance.
    Weighted(Vec<f64>),
    /// All of it on one fixed node.
    Hotspot(u32),
    /// All of it on the currently heaviest node (ties → lowest id) — the
    /// adversary that undoes the balancer's last round.
    MaxLoaded,
    /// All of it on one uniformly random node per round (seeded).
    RandomNode(StdRng),
}

/// Normalized Zipf(`s`) weights over `n` nodes, assigned rank→node through
/// a seeded permutation (so the heavy nodes are scattered across the
/// topology instead of clustered at low ids). Weight of rank `r` (0-based)
/// is `1/(r+1)^s` before normalization.
pub fn zipf_weights(n: usize, s: f64, seed: u64) -> Vec<f64> {
    assert!(n >= 1, "need at least one node");
    assert!(s >= 0.0, "Zipf exponent must be non-negative");
    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut weights = vec![0.0; n];
    let mut sum = 0.0;
    for (rank, &node) in ids.iter().enumerate() {
        let w = 1.0 / ((rank + 1) as f64).powf(s);
        weights[node] = w;
        sum += w;
    }
    for w in &mut weights {
        *w /= sum;
    }
    weights
}

/// Arrival generator: a [`RatePattern`] (how much per round) combined with
/// a [`Placement`] (where it lands). Injection is quantized through one
/// running carry in placement order, so token totals follow the requested
/// rates exactly in the long run.
#[derive(Debug)]
pub struct Arrivals {
    pattern: RatePattern,
    placement: Placement,
    carry: f64,
    name: String,
}

impl Arrivals {
    /// Creates the generator from a pattern and a placement.
    pub fn new(pattern: RatePattern, placement: Placement) -> Self {
        let pattern_name = match pattern {
            RatePattern::Constant { .. } => "constant",
            RatePattern::OnOff { .. } => "bursty",
            RatePattern::Diurnal { .. } => "diurnal",
        };
        let placement_name = match placement {
            Placement::Uniform => "uniform",
            Placement::Weighted(_) => "weighted",
            Placement::Hotspot(_) => "hotspot",
            Placement::MaxLoaded => "max-loaded",
            Placement::RandomNode(_) => "random-node",
        };
        Arrivals {
            pattern,
            placement,
            carry: 0.0,
            name: format!("arrivals({pattern_name},{placement_name})"),
        }
    }

    /// Constant-rate arrivals spread evenly over the nodes.
    pub fn constant(per_round: f64) -> Self {
        Arrivals::new(RatePattern::Constant { per_round }, Placement::Uniform)
    }

    /// Bursty on/off arrivals spread evenly over the nodes.
    pub fn bursty(high: f64, low: f64, on_rounds: u64, off_rounds: u64) -> Self {
        Arrivals::new(
            RatePattern::OnOff {
                high,
                low,
                on_rounds,
                off_rounds,
            },
            Placement::Uniform,
        )
    }

    /// Diurnal sine-wave arrivals spread evenly over the nodes.
    pub fn diurnal(mean: f64, amplitude: f64, period: u64) -> Self {
        Arrivals::new(
            RatePattern::Diurnal {
                mean,
                amplitude,
                period,
            },
            Placement::Uniform,
        )
    }

    /// Constant-rate arrivals with Zipf(`s`) hotspot skew over `n` nodes.
    pub fn zipf(per_round: f64, n: usize, s: f64, seed: u64) -> Self {
        Arrivals::new(
            RatePattern::Constant { per_round },
            Placement::Weighted(zipf_weights(n, s, seed)),
        )
    }

    /// The adversary: re-injects `per_round` at the currently heaviest
    /// node every round.
    pub fn adversarial(per_round: f64) -> Self {
        Arrivals::new(RatePattern::Constant { per_round }, Placement::MaxLoaded)
    }

    /// Replaces the placement, builder-style.
    pub fn with_placement(self, placement: Placement) -> Self {
        Arrivals::new(self.pattern, placement)
    }
}

/// Index of the heaviest node (ties broken toward the lowest id).
fn argmax<L: ScenarioLoad>(loads: &[L]) -> usize {
    let mut best = 0usize;
    for (i, v) in loads.iter().enumerate().skip(1) {
        if v.to_f64() > loads[best].to_f64() {
            best = i;
        }
    }
    best
}

impl<L: ScenarioLoad> Workload<L> for Arrivals {
    fn name(&self) -> &str {
        &self.name
    }

    fn apply(&mut self, round: u64, loads: &mut [L], _ctx: &WorkloadCtx) -> WorkloadDelta {
        let total = self.pattern.rate(round);
        let n = loads.len();
        let mut injected = 0.0;
        let mut give = |slot: &mut L, amount: f64, carry: &mut f64| {
            let q = L::quantize(amount, carry);
            *slot = slot.add(q);
            injected += q.to_f64();
        };
        match &mut self.placement {
            Placement::Uniform => {
                let per = total / n as f64;
                for slot in loads.iter_mut() {
                    give(slot, per, &mut self.carry);
                }
            }
            Placement::Weighted(weights) => {
                debug_assert_eq!(weights.len(), n, "one weight per node");
                for (slot, &w) in loads.iter_mut().zip(weights.iter()) {
                    give(slot, w * total, &mut self.carry);
                }
            }
            Placement::Hotspot(node) => {
                give(&mut loads[*node as usize], total, &mut self.carry);
            }
            Placement::MaxLoaded => {
                let v = argmax(loads);
                give(&mut loads[v], total, &mut self.carry);
            }
            Placement::RandomNode(rng) => {
                let v = rng.gen_range(0..n);
                give(&mut loads[v], total, &mut self.carry);
            }
        }
        WorkloadDelta {
            injected,
            consumed: 0.0,
        }
    }
}

/// How service capacity consumes load each round.
#[derive(Debug, Clone, PartialEq)]
pub enum DrainModel {
    /// Every node completes up to `per_node` units per round (an M/D/1-ish
    /// fixed service rate; backlog above capacity queues).
    FixedCapacity {
        /// Per-node service capacity per round.
        per_node: f64,
    },
    /// Every node completes `fraction` of its current (non-negative) load
    /// per round — service scales with backlog.
    Proportional {
        /// Fraction of the load serviced per round, in `[0, 1]`.
        fraction: f64,
    },
}

/// Consumption generator for a [`DrainModel`].
#[derive(Debug)]
pub struct Drain {
    model: DrainModel,
    carry: f64,
    name: &'static str,
}

impl Drain {
    /// Fixed-capacity drain: each node services up to `per_node` per round.
    pub fn fixed_capacity(per_node: f64) -> Self {
        assert!(per_node >= 0.0, "capacity must be non-negative");
        Drain {
            model: DrainModel::FixedCapacity { per_node },
            carry: 0.0,
            name: "drain(fixed-capacity)",
        }
    }

    /// Proportional drain: each node services `fraction` of its load.
    pub fn proportional(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "drain fraction must be in [0, 1] (got {fraction})"
        );
        Drain {
            model: DrainModel::Proportional { fraction },
            carry: 0.0,
            name: "drain(proportional)",
        }
    }
}

impl<L: ScenarioLoad> Workload<L> for Drain {
    fn name(&self) -> &str {
        self.name
    }

    fn apply(&mut self, _round: u64, loads: &mut [L], _ctx: &WorkloadCtx) -> WorkloadDelta {
        let mut consumed = 0.0;
        match self.model {
            DrainModel::FixedCapacity { per_node } => {
                // One quantization per round: every node shares the round's
                // integral capacity, and the carry alternates it so
                // fractional capacities are honoured in the long run.
                let cap = L::quantize(per_node, &mut self.carry);
                for slot in loads.iter_mut() {
                    consumed += slot.drain_capped(cap).to_f64();
                }
            }
            DrainModel::Proportional { fraction } => {
                for slot in loads.iter_mut() {
                    consumed += slot.drain_fraction(fraction).to_f64();
                }
            }
        }
        WorkloadDelta {
            injected: 0.0,
            consumed,
        }
    }
}

/// Chains several workloads into one, applied in order (arrivals before
/// drains is the conventional order; the combinator preserves whatever
/// order it is given). Deltas are summed.
pub struct Compose<L: ScenarioLoad> {
    parts: Vec<Box<dyn Workload<L>>>,
    name: String,
}

impl<L: ScenarioLoad> Compose<L> {
    /// Composes `parts`, applied front to back.
    pub fn new(parts: Vec<Box<dyn Workload<L>>>) -> Self {
        let name = format!(
            "compose[{}]",
            parts
                .iter()
                .map(|p| p.name().to_string())
                .collect::<Vec<_>>()
                .join(" + ")
        );
        Compose { parts, name }
    }

    /// Number of composed parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the composition is empty (a no-op workload).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl<L: ScenarioLoad> Workload<L> for Compose<L> {
    fn name(&self) -> &str {
        &self.name
    }

    fn apply(&mut self, round: u64, loads: &mut [L], ctx: &WorkloadCtx) -> WorkloadDelta {
        let mut delta = WorkloadDelta::default();
        for part in &mut self.parts {
            delta = delta.merge(part.apply(round, loads, ctx));
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTX: WorkloadCtx = WorkloadCtx { initial_total: 0.0 };

    #[test]
    fn constant_uniform_injects_exactly_continuous() {
        let mut w = Arrivals::constant(10.0);
        let mut loads = vec![0.0f64; 4];
        for round in 1..=3 {
            let d = Workload::<f64>::apply(&mut w, round, &mut loads, &CTX);
            assert!((d.injected - 10.0).abs() < 1e-12);
            assert_eq!(d.consumed, 0.0);
        }
        assert!((loads.iter().sum::<f64>() - 30.0).abs() < 1e-12);
        assert!(loads.iter().all(|&v| (v - 7.5).abs() < 1e-12));
    }

    #[test]
    fn fractional_token_rate_accumulates_via_carry() {
        // 0.25 tokens/round across 1 node: must inject a token every 4
        // rounds, not zero forever (0.25 is exactly representable, so the
        // carry maths is exact).
        let mut w = Arrivals::constant(0.25);
        let mut loads = vec![0i64; 1];
        let mut injected = 0.0;
        for round in 1..=100 {
            injected += Workload::<i64>::apply(&mut w, round, &mut loads, &CTX).injected;
        }
        assert_eq!(loads[0], 25);
        assert_eq!(injected, 25.0);
        // Rates that aren't binary fractions still track within one token
        // (the remainder lives in the carry).
        let mut w = Arrivals::constant(0.3);
        let mut loads = vec![0i64; 1];
        for round in 1..=100 {
            Workload::<i64>::apply(&mut w, round, &mut loads, &CTX);
        }
        assert!((loads[0] - 30).abs() <= 1, "got {}", loads[0]);
    }

    #[test]
    fn token_injection_matches_reported_delta_exactly() {
        let mut w = Arrivals::zipf(17.7, 8, 1.2, 42);
        let mut loads = vec![0i64; 8];
        let mut injected = 0.0;
        for round in 1..=50 {
            injected += Workload::<i64>::apply(&mut w, round, &mut loads, &CTX).injected;
        }
        let total: i64 = loads.iter().sum();
        assert_eq!(total as f64, injected, "token conservation must be exact");
        // Long-run total tracks the requested rate (carry loses < 1 token).
        assert!((injected - 50.0 * 17.7).abs() < 1.0);
    }

    #[test]
    fn bursty_pattern_phases() {
        let p = RatePattern::OnOff {
            high: 5.0,
            low: 1.0,
            on_rounds: 2,
            off_rounds: 3,
        };
        let rates: Vec<f64> = (1..=10).map(|r| p.rate(r)).collect();
        assert_eq!(
            rates,
            vec![5.0, 5.0, 1.0, 1.0, 1.0, 5.0, 5.0, 1.0, 1.0, 1.0]
        );
    }

    #[test]
    fn diurnal_is_periodic_and_non_negative() {
        let p = RatePattern::Diurnal {
            mean: 10.0,
            amplitude: 1.5, // over-modulated: trough clamps to 0
            period: 24,
        };
        for r in 1..=48 {
            let v = p.rate(r);
            assert!(v >= 0.0);
            assert_eq!(v.to_bits(), p.rate(r + 24).to_bits(), "period broken");
        }
        assert!(p.rate(7) > 10.0, "morning peak above mean");
    }

    #[test]
    fn zipf_weights_are_skewed_normalized_and_seeded() {
        let w = zipf_weights(64, 1.2, 7);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let mut sorted = w.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(sorted[0] > 5.0 * sorted[32], "head must dominate the tail");
        assert_eq!(w, zipf_weights(64, 1.2, 7), "same seed, same weights");
        assert_ne!(w, zipf_weights(64, 1.2, 8), "seed moves the hotspots");
    }

    #[test]
    fn adversarial_targets_current_max_with_low_id_ties() {
        let mut w = Arrivals::adversarial(4.0);
        let mut loads = vec![1.0f64, 9.0, 9.0, 2.0];
        Workload::<f64>::apply(&mut w, 1, &mut loads, &CTX);
        assert_eq!(loads, vec![1.0, 13.0, 9.0, 2.0]); // tie → node 1
        Workload::<f64>::apply(&mut w, 2, &mut loads, &CTX);
        assert_eq!(loads, vec![1.0, 17.0, 9.0, 2.0]);
    }

    #[test]
    fn random_node_placement_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut w = Arrivals::new(
                RatePattern::Constant { per_round: 1.0 },
                Placement::RandomNode(StdRng::seed_from_u64(seed)),
            );
            let mut loads = vec![0.0f64; 16];
            for round in 1..=32 {
                Workload::<f64>::apply(&mut w, round, &mut loads, &CTX);
            }
            loads
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn fixed_drain_caps_at_zero_and_reports_exactly() {
        let mut d = Drain::fixed_capacity(3.0);
        let mut loads = vec![5.0f64, 1.0, 0.0];
        let delta = Workload::<f64>::apply(&mut d, 1, &mut loads, &CTX);
        assert_eq!(loads, vec![2.0, 0.0, 0.0]);
        assert!((delta.consumed - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_token_capacity_alternates() {
        // Capacity 1.5/node/round: rounds alternate between 1 and 2
        // tokens of per-node capacity via the carry.
        let mut d = Drain::fixed_capacity(1.5);
        let mut loads = vec![100i64, 100];
        let c1 = Workload::<i64>::apply(&mut d, 1, &mut loads, &CTX).consumed;
        let c2 = Workload::<i64>::apply(&mut d, 2, &mut loads, &CTX).consumed;
        assert_eq!(c1 + c2, 6.0, "two rounds drain 2·2·1.5 = 6 tokens");
        assert_eq!(loads, vec![97, 97]);
    }

    #[test]
    fn proportional_drain_floors_tokens() {
        let mut d = Drain::proportional(0.5);
        let mut loads = vec![5i64, 1, 0, -3];
        let delta = Workload::<i64>::apply(&mut d, 1, &mut loads, &CTX);
        // 5 → drains 2 (floor 2.5), 1 → 0 (floor 0.5), 0 and negatives
        // untouched.
        assert_eq!(loads, vec![3, 1, 0, -3]);
        assert_eq!(delta.consumed, 2.0);
    }

    #[test]
    fn compose_sums_deltas_in_order() {
        let mut w: Compose<f64> = Compose::new(vec![
            Box::new(Arrivals::constant(8.0)),
            Box::new(Drain::proportional(0.5)),
        ]);
        assert_eq!(w.len(), 2);
        let mut loads = vec![0.0f64; 4];
        let d = w.apply(1, &mut loads, &CTX);
        assert!((d.injected - 8.0).abs() < 1e-12);
        // Drain runs after injection: half of the fresh 8 is serviced.
        assert!((d.consumed - 4.0).abs() < 1e-12);
        assert!((loads.iter().sum::<f64>() - 4.0).abs() < 1e-12);
        assert!(w.name().contains("arrivals(constant,uniform)"));
        assert!(w.name().contains("drain(proportional)"));
    }
}
