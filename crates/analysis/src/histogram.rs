//! ASCII histograms for load distributions — terminal-friendly output for
//! the examples and ad-hoc experiment inspection.

/// A fixed-bin histogram over `f64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Builds a histogram of `samples` with `bins` equal-width bins
    /// spanning `[min, max]` of the data (a single degenerate bin when all
    /// samples are equal).
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty(), "histogram of an empty sample");
        assert!(bins >= 1, "need at least one bin");
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut counts = vec![0usize; bins];
        if hi == lo {
            counts[0] = samples.len();
            return Histogram {
                lo,
                hi,
                counts,
                total: samples.len(),
            };
        }
        let width = (hi - lo) / bins as f64;
        for &s in samples {
            let idx = (((s - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Histogram {
            lo,
            hi,
            counts,
            total: samples.len(),
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total sample count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Renders the histogram with one row per bin, a proportional bar, and
    /// the count: `"[ 12.0,  18.0) ████████ 42"`.
    pub fn render(&self, bar_width: usize) -> String {
        use std::fmt::Write as _;
        let max_count = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let bins = self.counts.len();
        let width = if self.hi > self.lo {
            (self.hi - self.lo) / bins as f64
        } else {
            0.0
        };
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let left = self.lo + width * i as f64;
            let right = if i + 1 == bins { self.hi } else { left + width };
            let bar = "█".repeat((c * bar_width).div_ceil(max_count).min(bar_width));
            let _ = writeln!(out, "[{left:>10.1}, {right:>10.1}) {bar:<bar_width$} {c}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_partition_samples() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::from_samples(&samples, 10);
        assert_eq!(h.counts().iter().sum::<usize>(), 100);
        assert!(h.counts().iter().all(|&c| c == 10));
    }

    #[test]
    fn degenerate_single_value() {
        let h = Histogram::from_samples(&[3.0; 7], 5);
        assert_eq!(h.counts()[0], 7);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let h = Histogram::from_samples(&[0.0, 10.0], 10);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn render_shape() {
        let h = Histogram::from_samples(&[0.0, 1.0, 1.0, 2.0], 2);
        let r = h.render(10);
        assert_eq!(r.lines().count(), 2);
        assert!(r.contains('█'));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        Histogram::from_samples(&[], 4);
    }
}
