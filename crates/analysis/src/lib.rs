#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! # dlb-analysis
//!
//! Experiment harness for the BFH reproduction:
//!
//! * [`stats`] — summary statistics (mean/std/CI95/median) for Monte-Carlo
//!   results;
//! * [`montecarlo`] — a scoped-thread parallel trial runner (work-stealing
//!   over an atomic counter), deterministic per trial seed;
//! * [`table`] — fixed-width text tables and CSV rendering for the
//!   experiment reports recorded in `EXPERIMENTS.md`;
//! * [`experiments`] — the full reproduction suite **E1–E18** (one module
//!   per theorem/lemma family, see `DESIGN.md` §4), each returning a
//!   structured [`table::Report`]. The `repro` binary in `dlb-bench` prints
//!   them; the Criterion benches reuse their inner loops.

pub mod convergence;
pub mod experiments;
pub mod histogram;
pub mod localdiv;
pub mod montecarlo;
pub mod stats;
pub mod table;

pub use stats::Summary;
pub use table::{Report, Table};
