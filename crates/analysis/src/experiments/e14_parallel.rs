//! **E14 — the data-parallel executor** (the HPC execution path).
//!
//! The gather-form round is embarrassingly parallel; this experiment
//! verifies that the engine's pooled executor produces **bit-identical**
//! states to the serial one while scaling with cores, and reports round
//! throughput across thread counts on a large instance. (Criterion
//! benches in `dlb-bench` measure the same loop with proper statistics;
//! this table is the human-readable summary.)

use super::ExpConfig;
use crate::table::{fmt_f64, Report, Table};
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::engine::{recommended_threads, IntoEngine};
use dlb_core::init::{continuous_loads, Workload};
use dlb_core::telemetry::{Phase, Recorder, Telemetry, ENGINE_LANE};
use dlb_graphs::topology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Times `f` against the recorder's monotonic epoch clock and records the
/// window as one engine-lane span, so the measurement that feeds the table
/// is the same event the trace tooling sees.
fn timed<R>(rec: &Arc<Recorder>, round: u64, f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = rec.now_ns();
    let out = f();
    let dur_ns = rec.now_ns() - t0;
    rec.record(ENGINE_LANE, round, Phase::GatherInterior, t0, dur_ns);
    (out, dur_ns as f64 / 1e9)
}

/// Runs E14.
pub fn run(cfg: &ExpConfig) -> Report {
    let side: usize = cfg.pick(256, 48);
    let rounds = cfg.pick(30, 5);
    let n = side * side;
    let g = topology::torus2d(side, side);
    let mut report = Report::new("E14", "parallel executor: bit-identical scaling");

    let init = {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x14A);
        continuous_loads(n, 100.0, Workload::UniformRandom, &mut rng)
    };

    // One recorder for the whole experiment: variant k's wall time is the
    // engine-lane span tagged round = k (serial is 0), and the engines
    // themselves are armed so per-round phase spans land alongside.
    let rec = Arc::new(Recorder::new(0, 1 << 12));
    let tel = Telemetry::On(Arc::clone(&rec));

    // Serial reference (and its state for the identity check).
    let mut serial_state = init.clone();
    let mut serial_exec = ContinuousDiffusion::new(&g)
        .engine()
        .with_telemetry(tel.clone());
    let (_, serial_time) = timed(&rec, 0, || {
        for _ in 0..rounds {
            serial_exec.round(&mut serial_state);
        }
    });

    let mut table = Table::new(
        format!("torus {side}×{side} (n = {n}), {rounds} rounds of continuous Algorithm 1"),
        &[
            "threads",
            "time (s)",
            "rounds/s",
            "speedup",
            "identical to serial",
        ],
    );
    table.push_row(vec![
        "serial".to_string(),
        fmt_f64(serial_time),
        fmt_f64(rounds as f64 / serial_time),
        "1.0".to_string(),
        "-".to_string(),
    ]);

    let avail = recommended_threads();
    let mut thread_counts: Vec<usize> = vec![1, 2, 4, 8];
    if !thread_counts.contains(&avail) && avail > 1 {
        thread_counts.push(avail);
    }
    thread_counts.retain(|&t| t <= avail.max(2));
    let mut all_identical = true;
    for &threads in &thread_counts {
        let mut state = init.clone();
        let mut exec = ContinuousDiffusion::new(&g)
            .engine_parallel(threads)
            .with_telemetry(tel.clone());
        let (_, time) = timed(&rec, threads as u64, || {
            for _ in 0..rounds {
                exec.round(&mut state);
            }
        });
        let identical = state == serial_state;
        all_identical &= identical;
        table.push_row(vec![
            threads.to_string(),
            fmt_f64(time),
            fmt_f64(rounds as f64 / time),
            fmt_f64(serial_time / time),
            identical.to_string(),
        ]);
    }
    report.tables.push(table);
    report.notes.push(format!(
        "all parallel states bit-identical to the serial executor: {all_identical} \
         (guaranteed by the gather formulation — same per-node FLOP order)."
    ));
    report.notes.push(format!(
        "machine parallelism: {avail} threads; speedups saturate once the per-thread chunk \
         no longer amortizes the scoped-thread spawn (~n/threads < 10⁴ nodes)."
    ));
    report.notes.push(format!(
        "timed via the dlb_telemetry recorder ({} spans captured, {} dropped): the table's \
         wall times are engine-lane spans, per-round phase spans ride alongside for tracing.",
        rec.recorded(),
        rec.dropped()
    ));
    report.passed = Some(all_identical);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_identical() {
        let report = run(&ExpConfig::quick(47));
        assert!(
            report.notes[0].contains("bit-identical to the serial executor: true"),
            "{}",
            report.notes[0]
        );
    }
}
