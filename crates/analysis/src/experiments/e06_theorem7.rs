//! **E6 — Theorem 7** (continuous diffusion on dynamic networks).
//!
//! Paper: over a graph sequence `(G_k)`, Algorithm 1 reduces `Φ` to `ε·Φ₀`
//! within `K = O(ln(1/ε)/A_K)` rounds, where
//! `A_K = (1/K)·Σ λ₂⁽ᵏ⁾/δ⁽ᵏ⁾`. We reproduce with the explicit constant of
//! Theorem 4 (`K = 4·ln(1/ε)/A_K`) across four churn models over two
//! ground graphs, recording per-round spectra to evaluate `A_K`
//! *post hoc* (the bound is stated in terms of the realized sequence).

use super::ExpConfig;
use crate::table::{fmt_f64, Report, Table};
use dlb_core::init::{continuous_loads, Workload};
use dlb_core::{bounds, potential};
use dlb_dynamics::{
    run_dynamic_continuous, GraphSequence, IidSubgraphSequence, MarkovChurnSequence,
    MatchingOnlySequence, OutageSequence, StaticSequence,
};
use dlb_graphs::topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E6.
pub fn run(cfg: &ExpConfig) -> Report {
    let n: usize = cfg.pick(64, 16);
    let eps = cfg.pick(1e-4, 1e-2);
    let side = (n as f64).sqrt().round() as usize;
    let mut report = Report::new("E6", "Theorem 7: continuous diffusion on dynamic networks");
    let mut table = Table::new(
        format!("rounds to Φ ≤ ε·Φ₀ over dynamic sequences (n = {n}, ε = {eps:.0e})"),
        &["ground", "model", "A_K", "K_paper", "K_meas", "meas/paper"],
    );

    let mut violations = 0usize;
    for (gname, ground) in [
        ("torus", topology::torus2d(side, side)),
        ("hypercube", topology::hypercube(n.trailing_zeros())),
    ] {
        let models: Vec<(String, Box<dyn GraphSequence>)> = vec![
            (
                "static".into(),
                Box::new(StaticSequence::new(ground.clone())),
            ),
            (
                "iid p=0.3".into(),
                Box::new(IidSubgraphSequence::new(ground.clone(), 0.3, cfg.seed ^ 1)),
            ),
            (
                "iid p=0.5".into(),
                Box::new(IidSubgraphSequence::new(ground.clone(), 0.5, cfg.seed ^ 2)),
            ),
            (
                "iid p=0.8".into(),
                Box::new(IidSubgraphSequence::new(ground.clone(), 0.8, cfg.seed ^ 3)),
            ),
            (
                "markov .2/.4".into(),
                Box::new(MarkovChurnSequence::new(
                    ground.clone(),
                    0.2,
                    0.4,
                    cfg.seed ^ 4,
                )),
            ),
            (
                "matching-only".into(),
                Box::new(MatchingOnlySequence::new(ground.clone(), cfg.seed ^ 5)),
            ),
            (
                "outage 1/4".into(),
                Box::new(OutageSequence::new(
                    IidSubgraphSequence::new(ground.clone(), 0.8, cfg.seed ^ 6),
                    4,
                )),
            ),
        ];
        for (mname, mut seq) in models {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE6);
            let mut loads = continuous_loads(n, 100.0, Workload::Spike, &mut rng);
            let target = eps * potential::phi(&loads);
            let out = run_dynamic_continuous(seq.as_mut(), &mut loads, target, 1_000_000, true);
            let a_k = out.avg_ratio();
            let k_paper = if a_k > 0.0 {
                bounds::theorem7_rounds(a_k, eps).ceil()
            } else {
                f64::INFINITY
            };
            if !out.converged || out.rounds as f64 > k_paper {
                violations += 1;
            }
            table.push_row(vec![
                gname.to_string(),
                mname,
                fmt_f64(a_k),
                fmt_f64(k_paper),
                out.rounds.to_string(),
                fmt_f64(out.rounds as f64 / k_paper),
            ]);
        }
    }
    report.tables.push(table);
    report.notes.push(format!(
        "Theorem 7 bound violations: {violations} (expected 0)."
    ));
    report.notes.push(
        "A_K is evaluated on the realized sequence (per-round dense λ₂ solves). \
         matching-only rounds have δ⁽ᵏ⁾ = 1 components ⇒ λ₂⁽ᵏ⁾ = 0, dragging A_K down \
         exactly as the theorem prescribes; outage rounds contribute ratio 0."
            .to_string(),
    );
    report.passed = Some(violations == 0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_no_violations() {
        let report = run(&ExpConfig::quick(17));
        assert!(
            report.notes[0].contains("violations: 0"),
            "{}",
            report.notes[0]
        );
        assert_eq!(report.tables[0].rows.len(), 14);
    }
}
