//! **E15 (extension) — heterogeneous-capacity diffusion.**
//!
//! The paper cites Elsässer–Monien–Preis \[9\] (diffusion on heterogeneous
//! networks) as related work; `dlb_core::heterogeneous` generalizes
//! Algorithm 1 to capacity-proportional balancing (transfer
//! `min(cᵢ,cⱼ)·(ŵᵢ−ŵⱼ)/(4·max d)` on normalized loads `ŵ = ℓ/c`). This
//! experiment validates: (a) unit capacities reproduce Algorithm 1
//! bit-for-bit, (b) the weighted potential contracts geometrically, and
//! (c) the terminal distribution is capacity-proportional.

use super::{standard_instances, ExpConfig};
use crate::table::{fmt_f64, Report, Table};
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::heterogeneous::{proportional_target, weighted_phi, HeterogeneousDiffusion};
use dlb_core::init::{continuous_loads, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Capacity profiles swept by E15.
fn profiles(n: usize, seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let two_tier: Vec<f64> = (0..n)
        .map(|i| if i % 10 == 0 { 8.0 } else { 1.0 })
        .collect();
    let ramp: Vec<f64> = (0..n).map(|i| 1.0 + 4.0 * i as f64 / n as f64).collect();
    let random: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..4.0)).collect();
    vec![("two-tier", two_tier), ("ramp", ramp), ("random", random)]
}

/// Runs E15.
pub fn run(cfg: &ExpConfig) -> Report {
    let n = cfg.pick(256, 64);
    let eps = cfg.pick(1e-6, 1e-4);
    let mut report = Report::new(
        "E15",
        "extension: heterogeneous capacities (proportional balancing)",
    );

    // (a) unit-capacity regression against Algorithm 1 (bit equality).
    let mut unit_identical = true;
    for inst in standard_instances(n, cfg.seed) {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x15A);
        let init = continuous_loads(n, 100.0, Workload::UniformRandom, &mut rng);
        let mut a = init.clone();
        let mut b = init;
        ContinuousDiffusion::new(&inst.graph).engine().round(&mut a);
        HeterogeneousDiffusion::new(&inst.graph, vec![1.0; n])
            .engine()
            .round(&mut b);
        unit_identical &= a == b;
    }

    // (b)+(c) convergence and proportionality across capacity profiles.
    // Stopping rule: every node within 0.1% of its proportional target
    // (a Φ_c-based rule leaves an ε·Φ₀-scaled residual, which confounds
    // the deviation column across profiles with very different Φ₀).
    let dev_target = 1e-3;
    let mut table = Table::new(
        format!("rounds until every node is within {dev_target:.0e} of cᵢ·ρ (n = {n}, spike)"),
        &[
            "topology",
            "profile",
            "Φ_c₀",
            "rounds",
            "max rel. deviation from c·ρ",
        ],
    );
    let max_rel_dev = |loads: &[f64], caps: &[f64]| {
        let target = proportional_target(loads, caps);
        loads
            .iter()
            .zip(&target)
            .map(|(&l, &t)| ((l - t) / t).abs())
            .fold(0.0f64, f64::max)
    };
    let mut max_dev_global = 0.0f64;
    let mut stalls = 0usize;
    for inst in standard_instances(n, cfg.seed) {
        if !matches!(inst.name, "torus2d" | "hypercube" | "complete" | "rreg8") {
            continue;
        }
        for (pname, caps) in profiles(n, cfg.seed ^ 0x15B) {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x15C);
            let mut loads = continuous_loads(n, 100.0, Workload::Spike, &mut rng);
            let phi0 = weighted_phi(&loads, &caps);
            let mut exec = HeterogeneousDiffusion::new(&inst.graph, caps.clone()).engine();
            let mut rounds = 0usize;
            let budget = cfg.pick(200_000, 50_000);
            while max_rel_dev(&loads, &caps) > dev_target && rounds < budget {
                exec.round(&mut loads);
                rounds += 1;
            }
            let dev = max_rel_dev(&loads, &caps);
            if dev > dev_target {
                stalls += 1;
            }
            max_dev_global = max_dev_global.max(dev);
            table.push_row(vec![
                inst.name.to_string(),
                pname.to_string(),
                fmt_f64(phi0),
                rounds.to_string(),
                format!("{dev:.2e}"),
            ]);
        }
    }
    report.tables.push(table);
    report.notes.push(format!(
        "unit capacities bit-identical to Algorithm 1: {unit_identical}; runs not reaching \
         the {dev_target:.0e} proportionality target: {stalls} (expected 0; worst final \
         deviation {max_dev_global:.2e})."
    ));
    let _ = eps;
    report.notes.push(
        "the min(cᵢ,cⱼ) transfer cap plays the role Lemma 1's weight ordering plays in the \
         homogeneous case: every concurrent round still contracts the weighted potential."
            .to_string(),
    );
    report.passed = Some(unit_identical && stalls == 0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_valid() {
        let report = run(&ExpConfig::quick(53));
        assert!(
            report.notes[0].contains("bit-identical to Algorithm 1: true"),
            "{}",
            report.notes[0]
        );
    }
}
