//! **E3 — the sequentialization ablation** (Section 3's "factor 2").
//!
//! The paper's headline: concurrency degrades the per-round potential drop
//! by **at most a factor of two** versus the corresponding sequential
//! system. From identical states we execute (a) the concurrent Algorithm 1
//! round and (b) the adaptive sequential round (amounts recomputed per
//! activation), and report the distribution of
//! `drop_concurrent / drop_sequential`. The paper guarantees the ratio
//! stays ≥ 0.5; measured values show how conservative that is.

use super::{standard_instances, ExpConfig};
use crate::montecarlo::{parallel_trials, trial_seed};
use crate::stats::Summary;
use crate::table::{fmt_f64, Report, Table};
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::init::{continuous_loads, Workload};
use dlb_core::seq::{adaptive_sequential_round, AdaptiveOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E3.
pub fn run(cfg: &ExpConfig) -> Report {
    let n = cfg.pick(256, 64);
    let trials = cfg.pick(64, 8);
    let rounds_per_trial = cfg.pick(25, 6);
    let mut report = Report::new(
        "E3",
        "Section 3 ablation: concurrent vs sequential potential drop",
    );
    let mut table = Table::new(
        format!("drop(concurrent)/drop(adaptive sequential), {trials} trials × {rounds_per_trial} rounds (n = {n})"),
        &["topology", "samples", "min", "mean", "max", "paper ≥"],
    );

    let mut global_min = f64::INFINITY;
    for inst in standard_instances(n, cfg.seed) {
        let graph = &inst.graph;
        let ratios: Vec<Vec<f64>> = parallel_trials(trials, cfg.seed ^ 0xE3, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut loads = continuous_loads(n, 50.0, Workload::UniformRandom, &mut rng);
            let mut conc_exec = ContinuousDiffusion::new(graph).engine();
            let mut out = Vec::new();
            for round in 0..rounds_per_trial {
                let mut conc = loads.clone();
                let cs = conc_exec.round(&mut conc).expect("full stats");
                let conc_drop = cs.phi_before - cs.phi_after;

                let mut seq = loads.clone();
                let mut order_rng = StdRng::seed_from_u64(trial_seed(seed, round));
                let sr = adaptive_sequential_round(
                    graph,
                    &mut seq,
                    AdaptiveOrder::RoundStartWeight,
                    &mut order_rng,
                );
                let seq_drop = sr.phi_before - sr.phi_after;
                if seq_drop > 1e-9 {
                    out.push(conc_drop / seq_drop);
                }
                loads = conc; // advance with the concurrent protocol
            }
            out
        });
        let flat: Vec<f64> = ratios.into_iter().flatten().collect();
        if flat.is_empty() {
            continue;
        }
        let s = Summary::from_slice(&flat);
        global_min = global_min.min(s.min);
        table.push_row(vec![
            inst.name.to_string(),
            s.n.to_string(),
            fmt_f64(s.min),
            fmt_f64(s.mean),
            fmt_f64(s.max),
            "0.5".to_string(),
        ]);
    }
    report.tables.push(table);
    report.notes.push(format!(
        "global minimum ratio {} ≥ 0.5: the paper's factor-2 concurrency penalty bound \
         holds; typical ratios near or above 1 show concurrency usually costs far less \
         (and can even help, since every edge fires each round).",
        fmt_f64(global_min)
    ));
    report.passed = Some(global_min >= 0.5 - 1e-9);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_respects_half_bound() {
        let report = run(&ExpConfig::quick(11));
        for row in &report.tables[0].rows {
            let min: f64 = row[2].parse().expect("numeric min");
            assert!(min >= 0.5 - 1e-9, "{}: ratio {} < 0.5", row[0], min);
        }
    }
}
