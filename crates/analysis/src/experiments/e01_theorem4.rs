//! **E1 — Theorem 4** (continuous Algorithm 1 on fixed networks).
//!
//! Paper: after `T = 4δ·ln(1/ε)/λ₂` rounds, `Φ(L^T) ≤ ε·Φ(L⁰)`.
//!
//! For every standard topology and two workloads (spike, bimodal) we
//! measure the actual number of rounds to reach `ε·Φ₀` and print it next
//! to the paper's bound. The bound must never be violated
//! (`measured ≤ bound`); the ratio column shows how much slack the
//! analysis has on each topology (the paper's analysis is worst-case over
//! initial vectors aligned with the Fiedler direction).

use super::{standard_instances, ExpConfig};
use crate::table::{fmt_f64, Report, Table};
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::init::{continuous_loads, Workload};
use dlb_core::runner::rounds_to_epsilon;
use dlb_core::{bounds, potential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E1.
pub fn run(cfg: &ExpConfig) -> Report {
    let n = cfg.pick(256, 64);
    let eps = cfg.pick(1e-4, 1e-2);
    let avg = 100.0;
    let mut report = Report::new("E1", "Theorem 4: continuous diffusion on fixed networks");
    let mut table = Table::new(
        format!("rounds to Φ ≤ ε·Φ₀   (n = {n}, ε = {eps:.0e}, avg load = {avg})"),
        &[
            "topology",
            "δ",
            "λ₂",
            "workload",
            "Φ₀",
            "T_paper",
            "T_meas",
            "meas/paper",
        ],
    );

    let mut violations = 0usize;
    for inst in standard_instances(n, cfg.seed) {
        let bound = bounds::theorem4_rounds(inst.delta(), inst.lambda2, eps).ceil();
        for workload in [Workload::Spike, Workload::Bimodal] {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE1);
            let mut loads = continuous_loads(n, avg, workload, &mut rng);
            let phi0 = potential::phi(&loads);
            let mut balancer = ContinuousDiffusion::new(&inst.graph).engine();
            let out = rounds_to_epsilon(&mut balancer, &mut loads, eps, bound as usize + 10);
            if !out.converged || out.rounds as f64 > bound {
                violations += 1;
            }
            table.push_row(vec![
                inst.name.to_string(),
                inst.delta().to_string(),
                fmt_f64(inst.lambda2),
                workload.name().to_string(),
                fmt_f64(phi0),
                fmt_f64(bound),
                out.rounds.to_string(),
                fmt_f64(out.rounds as f64 / bound),
            ]);
        }
    }
    report.tables.push(table);
    report.notes.push(format!(
        "bound violations: {violations} (expected 0 — Theorem 4 is deterministic)"
    ));
    report.notes.push(
        "ratio < 1 everywhere: the measured convergence sits inside the paper's bound; \
         slack is largest on expanders where the worst-case Fiedler alignment is far from \
         the spike workload."
            .to_string(),
    );
    report.passed = Some(violations == 0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_no_violations() {
        let report = run(&ExpConfig::quick(7));
        assert!(
            report.notes[0].contains("violations: 0"),
            "{}",
            report.notes[0]
        );
        // 8 topologies × 2 workloads rows.
        assert_eq!(report.tables[0].rows.len(), 16);
    }
}
