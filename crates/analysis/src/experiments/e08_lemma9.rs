//! **E8 — Lemma 9** (random-partner degree bound).
//!
//! Paper: for a link `(i, j)` of Algorithm 2's sampled link set,
//! `Pr[max(dᵢ, dⱼ) ≤ 5 | (i,j) ∈ E] > 0.5`. We Monte-Carlo the
//! conditional probability across n, together with the observed maximum
//! partner count (the balls-into-bins `Θ(log n/log log n)` that motivates
//! the lemma: one cannot just plug `max dᵢ` into the fixed-network bound).

use super::ExpConfig;
use crate::montecarlo::parallel_trials;
use crate::stats::Summary;
use crate::table::{fmt_f64, Report, Table};
use dlb_core::bounds::LEMMA9_PROBABILITY_BOUND;
use dlb_core::random_partner::sample_partners;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E8.
pub fn run(cfg: &ExpConfig) -> Report {
    let sizes: Vec<usize> = cfg.pick(vec![16, 256, 4096, 65536], vec![16, 256]);
    let trials = cfg.pick(400, 50);
    let mut report = Report::new("E8", "Lemma 9: Pr[max(dᵢ,dⱼ) ≤ 5 | link] > 1/2");
    let mut table = Table::new(
        format!("{trials} sampled rounds per n"),
        &[
            "n",
            "links/round",
            "Pr[max d ≤ 5 | link]",
            "min over trials",
            "max dᵢ seen",
            "paper >",
        ],
    );

    let mut all_above = true;
    for &n in &sizes {
        let results: Vec<(f64, usize, u32)> =
            parallel_trials(trials, cfg.seed ^ 0xE8 ^ n as u64, |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let s = sample_partners(n, &mut rng);
                (s.lemma9_fraction(), s.links.len(), s.max_degree())
            });
        let fractions: Vec<f64> = results.iter().map(|r| r.0).collect();
        let avg_links = results.iter().map(|r| r.1 as f64).sum::<f64>() / results.len() as f64;
        let max_deg = results.iter().map(|r| r.2).max().unwrap_or(0);
        let s = Summary::from_slice(&fractions);
        if s.mean <= LEMMA9_PROBABILITY_BOUND {
            all_above = false;
        }
        table.push_row(vec![
            n.to_string(),
            fmt_f64(avg_links),
            s.format_mean_ci(4),
            fmt_f64(s.min),
            max_deg.to_string(),
            "0.5".to_string(),
        ]);
    }
    report.tables.push(table);
    report.notes.push(format!(
        "measured conditional probability ≈ 0.99 for all n — comfortably above the proven \
         0.5 (bound satisfied: {all_above})."
    ));
    report.notes.push(
        "max dᵢ grows slowly with n (balls-into-bins Θ(log n/log log n)), confirming why \
         the fixed-network Theorem 4 cannot be applied directly and Lemma 9's constant-\
         degree conditioning is needed."
            .to_string(),
    );
    report.passed = Some(all_above);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_bound_satisfied() {
        let report = run(&ExpConfig::quick(23));
        assert!(
            report.notes[0].contains("bound satisfied: true"),
            "{}",
            report.notes[0]
        );
    }
}
