//! The reproduction experiment suite (DESIGN.md §4).
//!
//! The paper is purely analytical — it has no tables or figures — so each
//! experiment here validates one theorem/lemma family empirically: it
//! prints the paper's bound next to the measured quantity for the same
//! parameters. `EXPERIMENTS.md` records one full run.
//!
//! Every experiment takes an [`ExpConfig`]; `quick` mode shrinks instance
//! sizes and trial counts so the integration tests can execute the whole
//! suite in seconds, while the `repro` binary runs the full sizes.

pub mod e01_theorem4;
pub mod e02_lemmas_1_2;
pub mod e03_seq_ablation;
pub mod e04_theorem6;
pub mod e05_threshold_scaling;
pub mod e06_theorem7;
pub mod e07_theorem8;
pub mod e08_lemma9;
pub mod e09_lemma10;
pub mod e10_theorem12;
pub mod e11_theorem14;
pub mod e12_baselines;
pub mod e13_spectral;
pub mod e14_parallel;
pub mod e15_heterogeneous;
pub mod e16_acceleration;
pub mod e17_factor_ablation;
pub mod e18_local_divergence;

use crate::table::Report;
use dlb_graphs::topology::Topology;
use dlb_graphs::Graph;
use dlb_spectral::{closed_form, eigen, lanczos};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Shrinks sizes/trials for CI-speed runs.
    pub quick: bool,
    /// Base seed; every random quantity in a report derives from it.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            quick: false,
            seed: 0xBF_2006,
        }
    }
}

impl ExpConfig {
    /// Quick-mode constructor used by tests.
    pub fn quick(seed: u64) -> Self {
        ExpConfig { quick: true, seed }
    }

    /// Picks `full` or `quick` depending on the mode.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// A topology instance annotated with its spectral parameters.
pub struct Instance {
    /// Display name (`cycle`, `torus2d`, …).
    pub name: &'static str,
    /// The graph.
    pub graph: Graph,
    /// `λ₂` of its Laplacian.
    pub lambda2: f64,
}

impl Instance {
    /// Maximum degree `δ`.
    pub fn delta(&self) -> u32 {
        self.graph.max_degree()
    }
}

/// `λ₂` for a standard topology of size `n`, via closed form where one
/// exists and the numerical solvers otherwise.
pub fn lambda2_of(topology: Topology, g: &Graph) -> f64 {
    let n = g.n();
    match topology {
        Topology::Path => closed_form::lambda2_path(n),
        Topology::Cycle => closed_form::lambda2_cycle(n),
        Topology::Grid2d => {
            let side = (n as f64).sqrt().round() as usize;
            closed_form::lambda2_grid2d(side, side)
        }
        Topology::Torus2d => {
            let side = (n as f64).sqrt().round() as usize;
            closed_form::lambda2_torus2d(side, side)
        }
        Topology::Hypercube => closed_form::lambda2_hypercube(n.trailing_zeros()),
        Topology::Complete => closed_form::lambda2_complete(n),
        Topology::DeBruijn | Topology::RandomRegular8 => {
            if n <= 1024 {
                eigen::laplacian_lambda2(g).expect("dense λ₂")
            } else {
                lanczos::lanczos_lambda2(g, lanczos::LanczosOptions::default()).0
            }
        }
    }
}

/// Builds the standard topology sweep at size `n` with `λ₂` annotated.
pub fn standard_instances(n: usize, seed: u64) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    Topology::ALL
        .iter()
        .map(|&t| {
            let graph = t.build(n, &mut rng);
            let lambda2 = lambda2_of(t, &graph);
            Instance {
                name: t.name(),
                graph,
                lambda2,
            }
        })
        .collect()
}

/// Runs every experiment, in order. Used by `repro all` and the
/// whole-suite integration test.
pub fn run_all(cfg: &ExpConfig) -> Vec<Report> {
    vec![
        e01_theorem4::run(cfg),
        e02_lemmas_1_2::run(cfg),
        e03_seq_ablation::run(cfg),
        e04_theorem6::run(cfg),
        e05_threshold_scaling::run(cfg),
        e06_theorem7::run(cfg),
        e07_theorem8::run(cfg),
        e08_lemma9::run(cfg),
        e09_lemma10::run(cfg),
        e10_theorem12::run(cfg),
        e11_theorem14::run(cfg),
        e12_baselines::run(cfg),
        e13_spectral::run(cfg),
        e14_parallel::run(cfg),
        e15_heterogeneous::run(cfg),
        e16_acceleration::run(cfg),
        e17_factor_ablation::run(cfg),
        e18_local_divergence::run(cfg),
    ]
}

/// Looks an experiment up by id (`"e1"`, `"E07"`, …).
pub fn run_by_id(id: &str, cfg: &ExpConfig) -> Option<Report> {
    let id = id.to_ascii_lowercase();
    let id = id.trim_start_matches('e').trim_start_matches('0');
    Some(match id {
        "1" => e01_theorem4::run(cfg),
        "2" => e02_lemmas_1_2::run(cfg),
        "3" => e03_seq_ablation::run(cfg),
        "4" => e04_theorem6::run(cfg),
        "5" => e05_threshold_scaling::run(cfg),
        "6" => e06_theorem7::run(cfg),
        "7" => e07_theorem8::run(cfg),
        "8" => e08_lemma9::run(cfg),
        "9" => e09_lemma10::run(cfg),
        "10" => e10_theorem12::run(cfg),
        "11" => e11_theorem14::run(cfg),
        "12" => e12_baselines::run(cfg),
        "13" => e13_spectral::run(cfg),
        "14" => e14_parallel::run(cfg),
        "15" => e15_heterogeneous::run(cfg),
        "16" => e16_acceleration::run(cfg),
        "17" => e17_factor_ablation::run(cfg),
        "18" => e18_local_divergence::run(cfg),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_instances_annotated_consistently() {
        let instances = standard_instances(64, 1);
        assert_eq!(instances.len(), Topology::ALL.len());
        for inst in &instances {
            assert_eq!(inst.graph.n(), 64, "{}", inst.name);
            assert!(inst.lambda2 > 0.0, "{} λ₂ = {}", inst.name, inst.lambda2);
            assert!(inst.delta() >= 1);
        }
    }

    #[test]
    fn lambda2_closed_forms_match_solver_at_small_n() {
        let instances = standard_instances(16, 2);
        for inst in &instances {
            let dense = eigen::laplacian_lambda2(&inst.graph).expect("dense");
            assert!(
                (dense - inst.lambda2).abs() < 1e-7,
                "{}: dense {} vs annotated {}",
                inst.name,
                dense,
                inst.lambda2
            );
        }
    }

    #[test]
    fn run_by_id_unknown_is_none() {
        assert!(run_by_id("e99", &ExpConfig::quick(1)).is_none());
    }
}
