//! **E5 — linear-vs-quadratic threshold scaling** (Remark after Lemma 5).
//!
//! The paper claims its discrete threshold `64δ³n/λ₂` improves on \[15\]'s
//! Theorem 4, which needs the potential to be *quadratic* in `n`. On
//! constant-spectral-gap families (hypercube, random 8-regular) we run the
//! discrete protocol to a fixed point and fit the terminal plateau
//! potential against `n`: the fit should be consistent with linear growth
//! (`Φ_end/n` roughly constant, `Φ_end/n²` vanishing).

use super::ExpConfig;
use crate::stats::linear_fit;
use crate::table::{fmt_f64, Report, Table};
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::init::{discrete_loads, Workload};
use dlb_core::runner::run_discrete_to_fixed_point;
use dlb_core::{bounds, potential};
use dlb_graphs::topology;
use dlb_spectral::closed_form;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E5.
pub fn run(cfg: &ExpConfig) -> Report {
    let sizes: Vec<usize> = cfg.pick(vec![64, 256, 1024, 4096], vec![16, 64, 256]);
    let avg = 100_000i64;
    let mut report = Report::new(
        "E5",
        "discrete plateau scaling: linear in n (paper) vs quadratic ([15])",
    );

    let mut notes_fit = Vec::new();
    let mut fits_linear = true;
    for family in ["hypercube", "rreg8"] {
        let mut table = Table::new(
            format!("terminal plateau on {family} (spike, avg = {avg} tokens)"),
            &["n", "δ", "λ₂", "Φ_end", "Φ_end/n", "Φ_end/n²", "Φ*_paper/n"],
        );
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &n in &sizes {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE5 ^ n as u64);
            let (graph, lambda2) = match family {
                "hypercube" => {
                    let dim = n.trailing_zeros();
                    (
                        topology::hypercube(dim),
                        closed_form::lambda2_hypercube(dim),
                    )
                }
                _ => {
                    let g = topology::random_regular(n, 8, &mut rng);
                    let l2 = super::lambda2_of(dlb_graphs::topology::Topology::RandomRegular8, &g);
                    (g, l2)
                }
            };
            let delta = graph.max_degree();
            let mut loads = discrete_loads(n, avg, Workload::Spike, &mut rng);
            let mut balancer = DiscreteDiffusion::new(&graph).engine();
            let (_, fixed) = run_discrete_to_fixed_point(
                &mut balancer,
                &mut loads,
                3,
                cfg.pick(200_000, 20_000),
            );
            let phi_end = potential::phi_discrete(&loads);
            let phi_star = bounds::theorem6_threshold(delta, lambda2, n);
            xs.push(n as f64);
            ys.push(phi_end);
            table.push_row(vec![
                format!("{n}{}", if fixed { "" } else { "*" }),
                delta.to_string(),
                fmt_f64(lambda2),
                fmt_f64(phi_end),
                fmt_f64(phi_end / n as f64),
                fmt_f64(phi_end / (n * n) as f64),
                fmt_f64(phi_star / n as f64),
            ]);
        }
        // Fit Φ_end against n: slope b with r² tells the growth order.
        let (_, slope, r2) = linear_fit(&xs, &ys);
        fits_linear &= r2 > 0.8 && slope > 0.0;
        notes_fit.push(format!(
            "{family}: linear fit Φ_end ≈ b·n gives b = {} (r² = {}) — consistent with the \
             paper's linear threshold; a quadratic law would bend these points upward.",
            fmt_f64(slope),
            fmt_f64(r2)
        ));
        report.tables.push(table);
    }
    report.notes.extend(notes_fit);
    report
        .notes
        .push("rows marked * did not reach a strict fixed point within the budget".to_string());
    report.passed = Some(fits_linear);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_plateau_grows_subquadratically() {
        let report = run(&ExpConfig::quick(5));
        for table in &report.tables {
            // Φ_end/n² must shrink with n (subquadratic growth).
            let col: Vec<f64> = table
                .rows
                .iter()
                .map(|r| {
                    r[5].parse::<f64>().unwrap_or_else(|_| {
                        // scientific notation path
                        r[5].parse::<f64>().unwrap_or(f64::NAN)
                    })
                })
                .collect();
            assert!(
                col.first().unwrap_or(&0.0) >= col.last().unwrap_or(&0.0),
                "Φ_end/n² did not shrink: {col:?}"
            );
        }
    }
}
