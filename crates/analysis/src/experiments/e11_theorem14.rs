//! **E11 — Lemma 13 and Theorem 14** (discrete random partners).
//!
//! Lemma 13: while `Φ ≥ 3200n`, `E[Φ(L^{t+1})] ≤ (39/40)·Φ(L^t)`.
//! Theorem 14: after `T = 240·c·ln(Φ₀/3200n)` rounds, `Φ ≤ 3200n` with
//! probability `≥ 1 − (Φ₀/3200n)^{−c/4}`.
//!
//! Thresholds are compared in the exact scaled domain
//! `Φ̂ ≥ 3200·n³ ⇔ Φ ≥ 3200n`.

use super::ExpConfig;
use crate::montecarlo::parallel_trials;
use crate::stats::Summary;
use crate::table::{fmt_f64, Report, Table};
use dlb_core::bounds::{self, LEMMA13_FACTOR};
use dlb_core::engine::IntoEngine;
use dlb_core::init::{discrete_loads, Workload};
use dlb_core::potential::{phi_discrete, phi_hat};
use dlb_core::random_partner::RandomPartnerDiscrete;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E11.
pub fn run(cfg: &ExpConfig) -> Report {
    let sizes: Vec<usize> = cfg.pick(vec![64, 256, 1024], vec![32, 128]);
    let trials = cfg.pick(600, 60);
    let avg = cfg.pick(100_000i64, 10_000);
    let mut report = Report::new(
        "E11",
        "Lemma 13 & Theorem 14: random balancing partners, discrete",
    );

    // (a) one-round factor above the 3200n threshold.
    let mut t1 = Table::new(
        format!("one-round E[Φ̂'/Φ̂] from a spike (Φ ≫ 3200n), {trials} trials"),
        &["n", "E[Φ'/Φ]", "max over trials", "paper ≤"],
    );
    let mut lemma13_ok = true;
    for &n in &sizes {
        let init = {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x11A);
            discrete_loads(n, avg, Workload::Spike, &mut rng)
        };
        assert!(
            phi_hat(&init) > bounds::lemma13_threshold_hat(n),
            "spike must start above the Lemma 13 threshold"
        );
        let phi0 = phi_hat(&init) as f64;
        let factors: Vec<f64> = parallel_trials(trials, cfg.seed ^ 0x11B ^ n as u64, |seed| {
            let mut b = RandomPartnerDiscrete::new(n, seed).engine();
            let mut loads = init.clone();
            let s = b.round(&mut loads).expect("full stats");
            s.phi_hat_after as f64 / phi0
        });
        let s = Summary::from_slice(&factors);
        if s.mean > LEMMA13_FACTOR {
            lemma13_ok = false;
        }
        t1.push_row(vec![
            n.to_string(),
            s.format_mean_ci(4),
            fmt_f64(s.max),
            fmt_f64(LEMMA13_FACTOR),
        ]);
    }
    report.tables.push(t1);

    // (b) trajectories to the plateau.
    let c = 1.0f64;
    let full_trials = cfg.pick(100, 20);
    let mut t2 = Table::new(
        format!("rounds to Φ ≤ 3200n over {full_trials} trajectories"),
        &[
            "n",
            "Φ₀/3200n",
            "T_paper",
            "max T_meas",
            "success rate",
            "paper ≥",
            "Φ_end/3200n",
        ],
    );
    let mut theorem14_ok = true;
    for &n in &sizes {
        let init = {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x11C);
            discrete_loads(n, avg, Workload::Spike, &mut rng)
        };
        let phi0 = phi_discrete(&init);
        let threshold_hat = bounds::lemma13_threshold_hat(n);
        let t_paper = bounds::theorem14_rounds(c, phi0, n).ceil();
        let outcomes: Vec<(Option<usize>, u128)> =
            parallel_trials(full_trials, cfg.seed ^ 0x11D ^ n as u64, |seed| {
                let mut b = RandomPartnerDiscrete::new(n, seed).engine();
                let mut loads = init.clone();
                let mut crossed = None;
                for round in 1..=(t_paper as usize) {
                    let s = b.round(&mut loads).expect("full stats");
                    if s.phi_hat_after <= threshold_hat {
                        crossed = Some(round);
                        break;
                    }
                }
                (crossed, phi_hat(&loads))
            });
        let successes = outcomes.iter().filter(|(r, _)| r.is_some()).count();
        let success_rate = successes as f64 / full_trials as f64;
        let ratio0 = phi0 / bounds::lemma13_threshold(n);
        let p_paper = 1.0 - ratio0.powf(-c / 4.0);
        if success_rate < p_paper {
            theorem14_ok = false;
        }
        let max_t = outcomes
            .iter()
            .filter_map(|(r, _)| *r)
            .max()
            .unwrap_or(t_paper as usize);
        let avg_end = outcomes
            .iter()
            .map(|&(_, p)| p as f64 / (n * n) as f64)
            .sum::<f64>()
            / full_trials as f64;
        t2.push_row(vec![
            n.to_string(),
            fmt_f64(ratio0),
            fmt_f64(t_paper),
            max_t.to_string(),
            fmt_f64(success_rate),
            fmt_f64(p_paper),
            fmt_f64(avg_end / bounds::lemma13_threshold(n)),
        ]);
    }
    report.tables.push(t2);

    report.notes.push(format!(
        "Lemma 13 respected in expectation: {lemma13_ok}; Theorem 14 success probability \
         respected: {theorem14_ok} (both expected true)."
    ));
    report.notes.push(
        "like the continuous case, the measured one-round factor (≈0.75) is far below \
         39/40 and trajectories cross the 3200n plateau with large margin — and keep \
         going well below it (Φ_end/3200n ≪ 1)."
            .to_string(),
    );
    report.passed = Some(lemma13_ok && theorem14_ok);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_bounds_hold() {
        let report = run(&ExpConfig::quick(37));
        assert!(
            report.notes[0].contains("in expectation: true")
                && report.notes[0].contains("respected: true"),
            "{}",
            report.notes[0]
        );
    }
}
