//! **E7 — Theorem 8** (discrete diffusion on dynamic networks).
//!
//! Paper: the discrete Algorithm 1 over `(G_k)` reaches the plateau
//! `Φ* = 64·n·max_k (δ⁽ᵏ⁾)³/λ₂⁽ᵏ⁾` within `K = O(ln(Φ₀/Φ*)/A_K)` rounds.
//! We drive the sequence manually, recording the exact scaled potential
//! and per-round spectra, then evaluate `Φ*`, the first crossing, and the
//! bound on the realized sequence.

use super::ExpConfig;
use crate::table::{fmt_f64, Report, Table};
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::init::{discrete_loads, Workload};
use dlb_core::{bounds, potential};
use dlb_dynamics::{GraphSequence, IidSubgraphSequence, MarkovChurnSequence, StaticSequence};
use dlb_graphs::topology;
use dlb_spectral::eigen::laplacian_lambda2;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E7.
pub fn run(cfg: &ExpConfig) -> Report {
    let n: usize = cfg.pick(64, 16);
    let avg = cfg.pick(1_000_000i64, 50_000);
    let max_rounds = cfg.pick(20_000, 3_000);
    let mut report = Report::new("E7", "Theorem 8: discrete diffusion on dynamic networks");
    let mut table = Table::new(
        format!("first round with Φ̂ ≤ n²·Φ* (n = {n}, spike avg = {avg} tokens)"),
        &[
            "ground",
            "model",
            "A_K",
            "Φ₀/Φ*",
            "K_paper",
            "K_meas",
            "Φ_end/Φ*",
        ],
    );

    let side = (n as f64).sqrt().round() as usize;
    let mut violations = 0usize;
    for (gname, ground) in [
        ("torus", topology::torus2d(side, side)),
        ("hypercube", topology::hypercube(n.trailing_zeros())),
    ] {
        let models: Vec<(String, Box<dyn GraphSequence>)> = vec![
            (
                "static".into(),
                Box::new(StaticSequence::new(ground.clone())),
            ),
            (
                "iid p=0.5".into(),
                Box::new(IidSubgraphSequence::new(ground.clone(), 0.5, cfg.seed ^ 21)),
            ),
            (
                "iid p=0.8".into(),
                Box::new(IidSubgraphSequence::new(ground.clone(), 0.8, cfg.seed ^ 22)),
            ),
            (
                "markov .2/.4".into(),
                Box::new(MarkovChurnSequence::new(
                    ground.clone(),
                    0.2,
                    0.4,
                    cfg.seed ^ 23,
                )),
            ),
        ];
        for (mname, mut seq) in models {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE7);
            let mut loads = discrete_loads(n, avg, Workload::Spike, &mut rng);
            let phi0 = potential::phi_discrete(&loads);

            // Manual drive recording trace + spectra.
            let mut trace_hat: Vec<u128> = vec![potential::phi_hat(&loads)];
            let mut spectra: Vec<(u32, f64)> = Vec::new();
            let mut ratios_sum = 0.0f64;
            for _ in 0..max_rounds {
                let g = seq.next_graph();
                let lambda2 = if g.m() == 0 {
                    0.0
                } else {
                    laplacian_lambda2(&g).expect("dense λ₂")
                };
                let delta = g.max_degree();
                if delta > 0 && lambda2 > 0.0 {
                    spectra.push((delta, lambda2));
                    ratios_sum += lambda2 / delta as f64;
                } // disconnected rounds contribute ratio 0 to the average
                let stats = DiscreteDiffusion::new(&g)
                    .engine()
                    .round(&mut loads)
                    .expect("full stats");
                trace_hat.push(stats.phi_hat_after);
            }
            let rounds_run = trace_hat.len() - 1;
            let a_k = ratios_sum / rounds_run as f64;
            let phi_star = bounds::theorem8_threshold(&spectra, n);
            let phi_star_hat = (phi_star * (n * n) as f64).ceil() as u128;
            let k_meas = trace_hat.iter().position(|&p| p <= phi_star_hat);
            let k_paper = bounds::theorem8_rounds(a_k, phi0, phi_star).ceil();
            let phi_end = *trace_hat.last().expect("non-empty") as f64 / (n * n) as f64;
            let k_meas = match k_meas {
                Some(k) => k,
                None => {
                    violations += 1;
                    rounds_run
                }
            };
            if k_meas as f64 > k_paper {
                violations += 1;
            }
            table.push_row(vec![
                gname.to_string(),
                mname,
                fmt_f64(a_k),
                fmt_f64(phi0 / phi_star),
                fmt_f64(k_paper),
                k_meas.to_string(),
                fmt_f64(phi_end / phi_star),
            ]);
        }
    }
    report.tables.push(table);
    report
        .notes
        .push(format!("Theorem 8 violations: {violations} (expected 0)."));
    report.notes.push(
        "Φ_end/Φ* ≪ 1: long after the first crossing the potential sits far below the \
         worst-case plateau — Theorem 8's threshold is loose in the same way as Theorem 6's, \
         but unlike [11] it covers the discrete dynamic case at all."
            .to_string(),
    );
    report.passed = Some(violations == 0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_no_violations() {
        let report = run(&ExpConfig::quick(19));
        assert!(
            report.notes[0].contains("violations: 0"),
            "{}",
            report.notes[0]
        );
    }
}
