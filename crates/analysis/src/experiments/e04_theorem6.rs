//! **E4 — Theorem 6 and Lemma 5** (discrete Algorithm 1).
//!
//! Lemma 5: while `Φ ≥ 64δ³n/λ₂`, each round's relative drop is at least
//! `λ₂/(8δ)`. Theorem 6: after `T = 8δ·ln(λ₂Φ₀/64δ³n)/λ₂` rounds the
//! potential is below the threshold.
//!
//! All potential comparisons run in the exact scaled domain `Φ̂ = n²·Φ`.
//! We report the measured rounds-to-threshold against the paper's bound,
//! count Lemma 5 violations above the threshold (expected 0), and show the
//! final discrepancy reached well past the threshold.

use super::{standard_instances, ExpConfig};
use crate::table::{fmt_f64, Report, Table};
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::init::{discrete_loads, Workload};
use dlb_core::{bounds, potential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E4.
pub fn run(cfg: &ExpConfig) -> Report {
    let n = cfg.pick(256, 64);
    let avg = cfg.pick(1_000_000i64, 100_000);
    let mut report = Report::new(
        "E4",
        "Theorem 6 & Lemma 5: discrete diffusion on fixed networks",
    );
    let mut table = Table::new(
        format!("rounds to Φ < 64δ³n/λ₂   (n = {n}, spike workload, avg = {avg} tokens)"),
        &[
            "topology", "δ", "λ₂", "Φ₀", "Φ*", "T_paper", "T_meas", "L5 viol", "K_end",
        ],
    );

    let mut total_l5_violations = 0usize;
    let mut bound_violations = 0usize;
    for inst in standard_instances(n, cfg.seed) {
        let delta = inst.delta();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE4);
        let mut loads = discrete_loads(n, avg, Workload::Spike, &mut rng);
        let phi0 = potential::phi_discrete(&loads);
        let threshold_hat = bounds::theorem6_threshold_hat(delta, inst.lambda2, n);
        let threshold = bounds::theorem6_threshold(delta, inst.lambda2, n);
        let t_paper = bounds::theorem6_rounds(delta, inst.lambda2, phi0, n).ceil();
        let drop_floor = bounds::lemma5_drop_factor(delta, inst.lambda2);

        let mut balancer = DiscreteDiffusion::new(&inst.graph).engine();
        let mut t_meas = None;
        let mut l5_violations = 0usize;
        let budget = t_paper as usize + 50;
        for round in 1..=budget {
            let stats = balancer.round(&mut loads).expect("full stats");
            if stats.phi_hat_before >= threshold_hat {
                // Lemma 5's regime: relative drop must be >= λ₂/8δ.
                if stats.relative_drop() < drop_floor - 1e-9 {
                    l5_violations += 1;
                }
            }
            if stats.phi_hat_after < threshold_hat {
                t_meas = Some(round);
                break;
            }
        }
        total_l5_violations += l5_violations;
        let t_meas = match t_meas {
            Some(t) => t,
            None => {
                bound_violations += 1;
                budget
            }
        };
        if t_meas as f64 > t_paper {
            bound_violations += 1;
        }
        // Run a while longer to show the terminal discrepancy.
        for _ in 0..cfg.pick(2000, 300) {
            balancer.round(&mut loads);
        }
        table.push_row(vec![
            inst.name.to_string(),
            delta.to_string(),
            fmt_f64(inst.lambda2),
            fmt_f64(phi0),
            fmt_f64(threshold),
            fmt_f64(t_paper),
            t_meas.to_string(),
            l5_violations.to_string(),
            potential::discrepancy_discrete(&loads).to_string(),
        ]);
    }
    report.tables.push(table);
    report.notes.push(format!(
        "Lemma 5 violations above threshold: {total_l5_violations}; Theorem 6 bound \
         violations: {bound_violations} (both expected 0)."
    ));
    report.notes.push(
        "K_end is the discrepancy after running past the plateau — small multiples of δ, \
         far below the worst the Φ* threshold would allow, matching the paper's remark \
         that the threshold is loose but *linear in n* (cf. E5)."
            .to_string(),
    );
    report.passed = Some(total_l5_violations == 0 && bound_violations == 0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_no_violations() {
        let report = run(&ExpConfig::quick(13));
        assert!(
            report.notes[0].contains("violations above threshold: 0")
                && report.notes[0].contains("bound violations: 0"),
            "{}",
            report.notes[0]
        );
    }
}
