//! **E10 — Lemma 11 and Theorem 12** (continuous random partners).
//!
//! Lemma 11: `E[Φ(L^{t+1})] ≤ (19/20)·Φ(L^t)` — a constant expected drop
//! *independent of any network parameter*. Theorem 12: after
//! `T = 120·c·ln Φ₀` rounds, `Φ ≤ e^{−c}` with probability
//! `≥ 1 − Φ₀^{−c/4}`.
//!
//! We (a) Monte-Carlo the one-round expected factor from a fixed state and
//! compare with 19/20, and (b) run full trajectories and compare the
//! rounds needed against `T` and the empirical success rate against the
//! probability bound.

use super::ExpConfig;
use crate::montecarlo::parallel_trials;
use crate::stats::Summary;
use crate::table::{fmt_f64, Report, Table};
use dlb_core::bounds::{self, LEMMA11_FACTOR};
use dlb_core::engine::IntoEngine;
use dlb_core::init::{continuous_loads, Workload};
use dlb_core::potential::phi;
use dlb_core::random_partner::RandomPartnerContinuous;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E10.
pub fn run(cfg: &ExpConfig) -> Report {
    let sizes: Vec<usize> = cfg.pick(vec![64, 256, 1024], vec![32, 128]);
    let trials = cfg.pick(600, 60);
    let mut report = Report::new(
        "E10",
        "Lemma 11 & Theorem 12: random balancing partners, continuous",
    );

    // (a) one-round expected factor.
    let mut t1 = Table::new(
        format!("one-round E[Φ'/Φ] from a spike, {trials} trials"),
        &["n", "E[Φ'/Φ]", "max over trials", "paper ≤"],
    );
    let mut lemma11_ok = true;
    for &n in &sizes {
        let init = {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x10A);
            continuous_loads(n, 100.0, Workload::Spike, &mut rng)
        };
        let phi0 = phi(&init);
        let factors: Vec<f64> = parallel_trials(trials, cfg.seed ^ 0x10B ^ n as u64, |seed| {
            let mut b = RandomPartnerContinuous::new(n, seed).engine();
            let mut loads = init.clone();
            let s = b.round(&mut loads).expect("full stats");
            s.phi_after / phi0
        });
        let s = Summary::from_slice(&factors);
        if s.mean > LEMMA11_FACTOR {
            lemma11_ok = false;
        }
        t1.push_row(vec![
            n.to_string(),
            s.format_mean_ci(4),
            fmt_f64(s.max),
            fmt_f64(LEMMA11_FACTOR),
        ]);
    }
    report.tables.push(t1);

    // (b) full trajectories against Theorem 12.
    let c = 1.0f64;
    let full_trials = cfg.pick(100, 20);
    let mut t2 = Table::new(
        format!("rounds to Φ ≤ e^(−{c}) over {full_trials} trajectories"),
        &[
            "n",
            "Φ₀",
            "T_paper",
            "max T_meas",
            "success rate",
            "paper ≥",
        ],
    );
    let mut theorem12_ok = true;
    for &n in &sizes {
        let init = {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x10C);
            continuous_loads(n, 100.0, Workload::Spike, &mut rng)
        };
        let phi0 = phi(&init);
        let t_paper = bounds::theorem12_rounds(c, phi0).ceil();
        let target = (-c).exp();
        let rounds: Vec<Option<usize>> =
            parallel_trials(full_trials, cfg.seed ^ 0x10D ^ n as u64, |seed| {
                let mut b = RandomPartnerContinuous::new(n, seed).engine();
                let mut loads = init.clone();
                for round in 1..=(t_paper as usize) {
                    let s = b.round(&mut loads).expect("full stats");
                    if s.phi_after <= target {
                        return Some(round);
                    }
                }
                None
            });
        let successes = rounds.iter().filter(|r| r.is_some()).count();
        let success_rate = successes as f64 / full_trials as f64;
        let p_paper = bounds::theorem12_success_probability(c, phi0);
        if success_rate < p_paper {
            theorem12_ok = false;
        }
        let max_t = rounds
            .iter()
            .flatten()
            .max()
            .copied()
            .unwrap_or(t_paper as usize);
        t2.push_row(vec![
            n.to_string(),
            fmt_f64(phi0),
            fmt_f64(t_paper),
            max_t.to_string(),
            fmt_f64(success_rate),
            fmt_f64(p_paper),
        ]);
    }
    report.tables.push(t2);

    report.notes.push(format!(
        "Lemma 11 respected in expectation: {lemma11_ok}; Theorem 12 success probability \
         respected: {theorem12_ok} (both expected true)."
    ));
    report.notes.push(
        "measured per-round factors sit near 0.7–0.8 — well below the proven 19/20 — and \
         actual convergence uses a small fraction of the 120·c·lnΦ₀ budget: the paper \
         optimizes constants for proof simplicity, not tightness."
            .to_string(),
    );
    report.passed = Some(lemma11_ok && theorem12_ok);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_bounds_hold() {
        let report = run(&ExpConfig::quick(31));
        assert!(
            report.notes[0].contains("in expectation: true")
                && report.notes[0].contains("respected: true"),
            "{}",
            report.notes[0]
        );
    }
}
