//! **E18 (extension) — local divergence (Rabani–Sinclair–Wanka \[16\]).**
//!
//! The paper positions its technique against \[16\]'s, which bounds the gap
//! between discrete diffusion and its idealized Markov chain by the local
//! divergence `Ψ(M) = O(δ·log n/μ)`. We measure `Ψ` empirically on the
//! standard topologies, confirm the `δ·log n/μ` shape (bounded ratio), and
//! verify the theorem's content: the discrete FOS trajectory never strays
//! further than `Ψ` from the idealized chain in `ℓ∞`.

use super::{standard_instances, ExpConfig};
use crate::localdiv::{local_divergence_max, max_discrete_deviation, rsw_bound_shape};
use crate::table::{fmt_f64, Report, Table};
use dlb_spectral::diffusion::{fos_matrix, gamma};

/// Runs E18.
pub fn run(cfg: &ExpConfig) -> Report {
    let n = cfg.pick(256, 64);
    let max_rounds = cfg.pick(400_000, 50_000);
    let mut report = Report::new(
        "E18",
        "extension: RSW local divergence Ψ vs the δ·ln(n)/μ shape",
    );
    let mut table = Table::new(
        format!("Ψ from unit-spike idealized chains (n = {n})"),
        &[
            "topology",
            "δ",
            "μ=1−γ",
            "Ψ measured",
            "δ·ln n/μ",
            "ratio",
            "max ℓ∞ dev",
            "dev/Ψ",
        ],
    );

    let mut dev_exceeds_psi = 0usize;
    let mut max_ratio = 0.0f64;
    for inst in standard_instances(n, cfg.seed) {
        let g = &inst.graph;
        let gam = gamma(&fos_matrix(g)).expect("γ");
        let mu = 1.0 - gam;
        // Sample a few sources (all equivalent on vertex-transitive
        // families; the tree-ish ones differ).
        let sources = [0u32, (n / 2) as u32, (n - 1) as u32];
        let d = local_divergence_max(g, &sources, max_rounds, 1e-6);
        let shape = rsw_bound_shape(g.max_degree(), mu, n);
        let ratio = d.psi / shape;
        max_ratio = max_ratio.max(ratio);
        let dev = max_discrete_deviation(g, 0, cfg.pick(5000, 1000));
        if dev > d.psi {
            dev_exceeds_psi += 1;
        }
        table.push_row(vec![
            inst.name.to_string(),
            inst.delta().to_string(),
            fmt_f64(mu),
            fmt_f64(d.psi),
            fmt_f64(shape),
            fmt_f64(ratio),
            fmt_f64(dev),
            fmt_f64(dev / d.psi),
        ]);
    }
    report.tables.push(table);
    report.notes.push(format!(
        "deviation-exceeds-Ψ violations: {dev_exceeds_psi} (expected 0 — RSW's theorem); \
         worst Ψ/(δ·ln n/μ) ratio: {} (the theory says O(1)).",
        fmt_f64(max_ratio)
    ));
    report.notes.push(
        "dev/Ψ ≪ 1 throughout: the discrete trajectory tracks the idealized chain far \
         more tightly than the worst-case Ψ budget — consistent with [16]'s remark that \
         rounding is only significant near the balanced state, which is also why BFH's \
         Lemma 5 can afford a threshold merely *linear* in n."
            .to_string(),
    );
    report.passed = Some(dev_exceeds_psi == 0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_no_violations() {
        let report = run(&ExpConfig::quick(67));
        assert!(
            report.notes[0].contains("violations: 0"),
            "{}",
            report.notes[0]
        );
    }
}
