//! **E16 (extension) — acceleration ablation: FOS → SOS → Chebyshev.**
//!
//! Situates the paper's Algorithm 1 against the acceleration ladder of
//! the algebraic line of work it cites: first-order (\[3\]/\[15\]),
//! second-order with optimal `β` (\[15\]), and the Chebyshev semi-iterative
//! scheme (the per-step-optimal version, in the spirit of \[7\]'s optimal
//! polynomial scheme). On slow topologies (`γ → 1`) each rung is
//! dramatically faster; the table quantifies the ladder and confirms the
//! theory relations (`ω∞ = β_opt`, rate `≈ √` of FOS exponent).

use super::ExpConfig;
use crate::table::{fmt_f64, Report, Table};
use dlb_baselines::{ChebyshevContinuous, FirstOrderContinuous, SecondOrderContinuous};
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::model::ContinuousBalancer;
use dlb_core::runner::rounds_to_epsilon;
use dlb_graphs::topology;
use dlb_spectral::diffusion::{fos_matrix, gamma, sos_optimal_beta};

/// Runs E16.
pub fn run(cfg: &ExpConfig) -> Report {
    let n = cfg.pick(256, 64);
    let eps = cfg.pick(1e-8, 1e-5);
    let max_rounds = cfg.pick(5_000_000, 500_000);
    let mut report = Report::new(
        "E16",
        "extension ablation: first-order vs second-order vs Chebyshev",
    );
    let mut table = Table::new(
        format!("rounds to Φ ≤ ε·Φ₀ (n = {n}, ε = {eps:.0e}, spike)"),
        &[
            "topology",
            "γ",
            "alg1",
            "fos",
            "sos",
            "chebyshev",
            "fos/sos",
            "sos/cheb",
        ],
    );

    let mut ladder_ok = true;
    let side = (n as f64).sqrt().round() as usize;
    for (name, g) in [
        ("cycle", topology::cycle(n)),
        ("path", topology::path(n)),
        ("grid2d", topology::grid2d(side, side)),
        ("torus2d", topology::torus2d(side, side)),
    ] {
        let gam = gamma(&fos_matrix(&g)).expect("γ");
        let race = |b: &mut dyn ContinuousBalancer| -> usize {
            let mut loads = vec![0.0; n];
            loads[0] = 100.0 * n as f64;
            let out = rounds_to_epsilon(b, &mut loads, eps, max_rounds);
            if out.converged {
                out.rounds
            } else {
                max_rounds
            }
        };
        let alg1 = race(&mut ContinuousDiffusion::new(&g).engine());
        let fos = race(&mut FirstOrderContinuous::new(&g).engine());
        let sos = race(&mut SecondOrderContinuous::with_optimal_beta(&g).engine());
        let cheb = race(&mut ChebyshevContinuous::new(&g).engine());
        // The ladder must be monotone. Chebyshev's optimality is over
        // worst-case initial vectors and over the transient; on long runs
        // from one fixed spike the fixed-ω SOS can edge it by a few
        // percent, so the criterion is "matches SOS within 5%".
        ladder_ok &= fos < alg1 && sos < fos && (cheb as f64) <= 1.05 * sos as f64 + 2.0;
        table.push_row(vec![
            name.to_string(),
            fmt_f64(gam),
            alg1.to_string(),
            fos.to_string(),
            sos.to_string(),
            cheb.to_string(),
            fmt_f64(fos as f64 / sos as f64),
            fmt_f64(sos as f64 / cheb as f64),
        ]);
    }
    report.tables.push(table);

    // ω∞ = β_opt cross-check on the slowest instance.
    let g = topology::cycle(n);
    let mut cheb = ChebyshevContinuous::new(&g).engine();
    let beta = sos_optimal_beta(cheb.protocol().gamma());
    let mut loads = vec![0.0; n];
    loads[0] = n as f64;
    for _ in 0..cfg.pick(2000, 400) {
        cheb.round(&mut loads);
    }
    let omega_err = (cheb.protocol().omega() - beta).abs();
    report.notes.push(format!(
        "acceleration ladder monotone (alg1 > fos > sos ≈ chebyshev within 5%): \
         {ladder_ok}; Chebyshev ω∞ matches the optimal SOS β to {omega_err:.2e}."
    ));
    report.notes.push(
        "Algorithm 1's per-edge factor 1/(4·max d) is ≈4× smaller than FOS's 1/(δ+1), \
         which costs a constant in round count — the price of the concurrency-robust \
         analysis; the momentum schemes then buy the quadratic (√) rate improvement \
         exactly as [15]/[7] predict."
            .to_string(),
    );
    report.passed = Some(ladder_ok);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_ladder_holds() {
        let report = run(&ExpConfig::quick(59));
        assert!(report.notes[0].contains("5%): true"), "{}", report.notes[0]);
    }
}
