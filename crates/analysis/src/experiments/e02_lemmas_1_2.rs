//! **E2 — Lemmas 1 and 2** (the sequentialization certificates).
//!
//! Lemma 1: with edges activated in increasing weight order, every
//! activation drops the potential by at least `w_ij·|ℓᵢ − ℓⱼ|`.
//! Lemma 2: consequently a full round drops at least
//! `(1/4δ)·Σ_{(i,j)∈E} (ℓᵢ − ℓⱼ)²`.
//!
//! We replay thousands of activations across topologies and random
//! instances, counting violations (expected: zero) and reporting the
//! tightness of both inequalities.

use super::{standard_instances, ExpConfig};
use crate::table::{fmt_f64, Report, Table};
use dlb_core::init::{continuous_loads, Workload};
use dlb_core::potential::phi;
use dlb_core::seq::sequentialized_round;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E2.
pub fn run(cfg: &ExpConfig) -> Report {
    // n must be simultaneously a perfect square (grid/torus) and a power of
    // two (hypercube/de Bruijn): use 4^k sizes.
    let n = cfg.pick(256, 64);
    let rounds = cfg.pick(40, 10);
    let mut report = Report::new(
        "E2",
        "Lemmas 1 & 2: per-activation and per-round drop bounds",
    );
    let mut table = Table::new(
        format!("sequentialized replay over {rounds} rounds (n = {n})"),
        &[
            "topology",
            "activations",
            "L1 viol",
            "min drop/L1bound",
            "L2 viol",
            "min drop/L2bound",
        ],
    );

    let mut total_l1_violations = 0usize;
    let mut total_l2_violations = 0usize;
    // Square sizes for grid/torus: use 121/36 fallback handled by caller n.
    for inst in standard_instances(n, cfg.seed) {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE2);
        let mut loads = continuous_loads(n, 50.0, Workload::UniformRandom, &mut rng);
        let mut activations = 0usize;
        let mut l1_viol = 0usize;
        let mut l2_viol = 0usize;
        let mut min_l1_ratio = f64::INFINITY;
        let mut min_l2_ratio = f64::INFINITY;
        for _ in 0..rounds {
            let edge_sq: f64 = inst
                .graph
                .edges()
                .iter()
                .map(|&(u, v)| (loads[u as usize] - loads[v as usize]).powi(2))
                .sum();
            let l2_bound = edge_sq / (4.0 * inst.delta() as f64);
            if phi(&loads) < 1e-15 {
                break;
            }
            let round = sequentialized_round(&inst.graph, &mut loads);
            for a in &round.activations {
                activations += 1;
                if !a.satisfies_lemma1(1e-9) {
                    l1_viol += 1;
                }
                if a.lemma1_bound > 1e-12 {
                    min_l1_ratio = min_l1_ratio.min(a.drop / a.lemma1_bound);
                }
            }
            let drop = round.phi_before - round.phi_after;
            if l2_bound > 1e-12 {
                min_l2_ratio = min_l2_ratio.min(drop / l2_bound);
                if drop < l2_bound - 1e-9 {
                    l2_viol += 1;
                }
            }
        }
        total_l1_violations += l1_viol;
        total_l2_violations += l2_viol;
        table.push_row(vec![
            inst.name.to_string(),
            activations.to_string(),
            l1_viol.to_string(),
            if min_l1_ratio.is_finite() {
                fmt_f64(min_l1_ratio)
            } else {
                "-".into()
            },
            l2_viol.to_string(),
            if min_l2_ratio.is_finite() {
                fmt_f64(min_l2_ratio)
            } else {
                "-".into()
            },
        ]);
    }
    report.tables.push(table);
    report.notes.push(format!(
        "Lemma 1 violations: {total_l1_violations}, Lemma 2 violations: \
         {total_l2_violations} (both expected 0 — they are theorems)"
    ));
    report.notes.push(
        "min ratios ≥ 1 show the proven inequalities hold with real slack; Lemma 1 is \
         tightest on high-degree topologies where a node's other neighbours can absorb \
         almost the full (dᵢ−1)·w budget."
            .to_string(),
    );
    report.passed = Some(total_l1_violations == 0 && total_l2_violations == 0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_no_violations() {
        let report = run(&ExpConfig::quick(3));
        assert!(
            report.notes[0].contains("violations: 0, Lemma 2 violations: 0"),
            "{}",
            report.notes[0]
        );
    }
}
