//! **E17 (extension) — why divide by 4·max(dᵢ,dⱼ)?**
//!
//! The paper's transfer rule divides the load difference by
//! `4·max(dᵢ, dⱼ)`. The `max(dᵢ, dⱼ)` neutralizes degree imbalance; the
//! `4` is what makes Lemma 1 go through (a sender can lose at most a
//! quarter of its slack to *other* neighbours before an edge activates).
//! This ablation sweeps the divisor factor `k`:
//!
//! * `k < 1` breaks double stochasticity — the potential genuinely
//!   *increases* (divergence);
//! * `k = 1` is doubly stochastic but admits the eigenvalue −1: on
//!   *regular bipartite* topologies (even cycle, torus, hypercube) the
//!   load oscillates with frozen potential and never converges — boundary
//!   nodes damp the oscillation on the path and grid;
//! * `k ≥ 2` makes the round matrix PSD — smooth convergence, slowing
//!   proportionally to `k`; `k = 4` is the smallest value for which the
//!   paper's sequentialization constants (Lemma 1, Lemma 5's discrete
//!   version) hold.

use super::{standard_instances, ExpConfig};
use crate::table::{fmt_f64, Report, Table};
use dlb_core::continuous::GeneralizedDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::init::{continuous_loads, Workload};
use dlb_core::potential::phi;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E17.
pub fn run(cfg: &ExpConfig) -> Report {
    let n = cfg.pick(256, 64);
    let eps = cfg.pick(1e-4, 1e-2);
    let max_rounds = cfg.pick(250_000, 25_000);
    let factors = [0.5, 1.0, 2.0, 4.0, 8.0];
    let mut report = Report::new(
        "E17",
        "extension ablation: the divisor factor k in k·max(dᵢ,dⱼ)",
    );
    let mut table = Table::new(
        format!("instability (Φ-increasing rounds) and speed per factor (n = {n}, ε = {eps:.0e})"),
        &["topology", "k=0.5", "k=1", "k=2", "k=4", "k=8"],
    );

    let mut k4_unstable = 0usize;
    let mut k4_speed: Vec<(f64, f64)> = Vec::new(); // (k=4 rounds, k=8 rounds)
    for inst in standard_instances(n, cfg.seed) {
        let mut cells = Vec::with_capacity(factors.len());
        let mut r4 = None;
        let mut r8 = None;
        for &k in &factors {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x17A);
            let mut loads = continuous_loads(n, 100.0, Workload::Spike, &mut rng);
            let phi0 = phi(&loads);
            let target = eps * phi0;
            let mut exec = GeneralizedDiffusion::new(&inst.graph, k).engine();
            let mut increases = 0usize;
            let mut rounds = 0usize;
            let mut diverged = false;
            while phi(&loads) > target && rounds < max_rounds {
                let s = exec.round(&mut loads).expect("full stats");
                if s.phi_after > s.phi_before * (1.0 + 1e-12) {
                    increases += 1;
                }
                if !s.phi_after.is_finite() || s.phi_after > 1e3 * phi0 {
                    diverged = true;
                    break;
                }
                rounds += 1;
            }
            let converged = !diverged && phi(&loads) <= target;
            if k == 4.0 {
                k4_unstable += increases;
                if converged {
                    r4 = Some(rounds as f64);
                }
            }
            if k == 8.0 && converged {
                r8 = Some(rounds as f64);
            }
            cells.push(if diverged {
                "DIVERGED".to_string()
            } else if !converged {
                format!("stall({increases}↑)")
            } else if increases > 0 {
                format!("{rounds} ({increases}↑)")
            } else {
                rounds.to_string()
            });
        }
        if let (Some(a), Some(b)) = (r4, r8) {
            k4_speed.push((a, b));
        }
        let mut row = vec![inst.name.to_string()];
        row.extend(cells);
        table.push_row(row);
    }
    report.tables.push(table);

    let avg_slowdown = if k4_speed.is_empty() {
        f64::NAN
    } else {
        k4_speed.iter().map(|(a, b)| b / a).sum::<f64>() / k4_speed.len() as f64
    };
    report.notes.push(format!(
        "k = 4 never increased the potential in any round ({k4_unstable} increases — the \
         Lemma 1 regime); k = 0.5 diverges outright; k = 1 stalls on *regular bipartite* \
         topologies — even cycle, torus, hypercube — where the round matrix has \
         the exact eigenvalue −1 (boundary nodes damp the oscillation on the \
         path/grid); k = 8 is stable but ≈{}× slower \
         than k = 4.",
        fmt_f64(avg_slowdown)
    ));
    report.notes.push(
        "cells show rounds-to-ε; `(m↑)` marks m potential-increasing rounds; `stall` = \
         did not reach ε within the budget (the k = 1 bipartite oscillation shows up \
         here); `DIVERGED` = Φ exceeded 10³·Φ₀. k = 2 already converges in the \
         continuous model — the extra factor 2 in the paper is the price of the \
         discrete-case and concurrency-bound constants."
            .to_string(),
    );
    report.passed = Some(k4_unstable == 0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_k4_stable() {
        let report = run(&ExpConfig::quick(61));
        assert!(
            report.notes[0].contains("(0 increases"),
            "k=4 produced potential increases: {}",
            report.notes[0]
        );
    }
}
