//! **E9 — Lemma 10** (the exact pairwise-potential identity).
//!
//! Paper: `Σᵢ Σⱼ (ℓᵢ − ℓⱼ)² = 2n·Φ(L)`. In the exact scaled domain this
//! is the integer identity `n·Σᵢⱼ (ℓᵢ−ℓⱼ)² = 2·Φ̂(L)`, which we verify
//! bit-exactly over randomized vectors of several sizes and magnitudes
//! (the property-based suite additionally covers adversarial shapes).

use super::ExpConfig;
use crate::montecarlo::parallel_trials;
use crate::table::{Report, Table};
use dlb_core::potential::{lemma10_exact_identity_holds, pairwise_sq_sum, phi_hat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs E9.
pub fn run(cfg: &ExpConfig) -> Report {
    let sizes: Vec<usize> = cfg.pick(vec![2, 17, 256, 4096], vec![2, 17, 128]);
    let trials = cfg.pick(2000, 100);
    let magnitude = 1_000_000_007i64;
    let mut report = Report::new("E9", "Lemma 10: n·Σᵢⱼ(ℓᵢ−ℓⱼ)² = 2·Φ̂(L), exactly");
    let mut table = Table::new(
        format!("{trials} random vectors per n, entries uniform in [−{magnitude}, {magnitude}]"),
        &["n", "trials", "exact matches", "example Φ̂", "example Σᵢⱼ"],
    );

    let mut all_exact = true;
    for &n in &sizes {
        let oks: Vec<bool> = parallel_trials(trials, cfg.seed ^ 0xE9 ^ n as u64, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let loads: Vec<i64> = (0..n)
                .map(|_| rng.gen_range(-magnitude..=magnitude))
                .collect();
            lemma10_exact_identity_holds(&loads)
        });
        let matches = oks.iter().filter(|&&b| b).count();
        if matches != trials {
            all_exact = false;
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE9 ^ n as u64);
        let example: Vec<i64> = (0..n)
            .map(|_| rng.gen_range(-magnitude..=magnitude))
            .collect();
        table.push_row(vec![
            n.to_string(),
            trials.to_string(),
            matches.to_string(),
            phi_hat(&example).to_string(),
            pairwise_sq_sum(&example).to_string(),
        ]);
    }
    report.tables.push(table);
    report.notes.push(format!(
        "all identities exact in 128-bit integer arithmetic: {all_exact} (expected true; \
         Lemma 10 is an algebraic identity and the implementation must not lose a bit)."
    ));
    report.passed = Some(all_exact);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_all_exact() {
        let report = run(&ExpConfig::quick(29));
        assert!(report.notes[0].contains("exact in 128-bit integer arithmetic: true"));
    }
}
