//! **E13 — spectral substrate validation.**
//!
//! The reproduction computes every theorem bound from `λ₂`, so the
//! eigensolvers themselves need a validation table: closed form vs dense
//! QL vs Lanczos on the structured families, eigenpair residuals, and the
//! Cheeger sandwich `λ₂/2 ≤ α` against exhaustive edge expansion on small
//! graphs (the connection the paper invokes when relating its bounds to
//! the expansion-based ones).

use super::ExpConfig;
use crate::table::{fmt_f64, Report, Table};
use dlb_graphs::{expansion, topology};
use dlb_spectral::{closed_form, eigen, lanczos, SymMatrix};

/// Runs E13.
pub fn run(cfg: &ExpConfig) -> Report {
    let n: usize = cfg.pick(256, 64);
    let mut report = Report::new("E13", "spectral toolkit validation (λ₂ ground truth)");

    // (a) three-way λ₂ agreement.
    let mut t1 = Table::new(
        format!("λ₂: closed form vs dense QL vs Lanczos (n = {n})"),
        &[
            "topology",
            "closed form",
            "dense",
            "lanczos",
            "|dense−cf|",
            "|lanczos−cf|",
        ],
    );
    let side = (n as f64).sqrt().round() as usize;
    let dim = n.trailing_zeros();
    let cases: Vec<(&str, dlb_graphs::Graph, f64)> = vec![
        ("path", topology::path(n), closed_form::lambda2_path(n)),
        ("cycle", topology::cycle(n), closed_form::lambda2_cycle(n)),
        (
            "grid2d",
            topology::grid2d(side, side),
            closed_form::lambda2_grid2d(side, side),
        ),
        (
            "torus2d",
            topology::torus2d(side, side),
            closed_form::lambda2_torus2d(side, side),
        ),
        (
            "hypercube",
            topology::hypercube(dim),
            closed_form::lambda2_hypercube(dim),
        ),
        ("star", topology::star(n), closed_form::lambda2_star(n)),
        (
            "complete",
            topology::complete(n),
            closed_form::lambda2_complete(n),
        ),
        (
            "bipartite",
            topology::complete_bipartite(n / 4, 3 * n / 4),
            closed_form::lambda2_complete_bipartite(n / 4, 3 * n / 4),
        ),
    ];
    let mut max_err = 0.0f64;
    for (name, g, cf) in &cases {
        let dense = eigen::laplacian_lambda2(g).expect("dense λ₂");
        let (lz, _) = lanczos::lanczos_lambda2(g, lanczos::LanczosOptions::default());
        let e_dense = (dense - cf).abs();
        let e_lz = (lz - cf).abs();
        max_err = max_err.max(e_dense).max(e_lz);
        t1.push_row(vec![
            name.to_string(),
            fmt_f64(*cf),
            fmt_f64(dense),
            fmt_f64(lz),
            format!("{e_dense:.2e}"),
            format!("{e_lz:.2e}"),
        ]);
    }
    report.tables.push(t1);

    // (b) eigenpair residuals on an irregular graph.
    let mut t2 = Table::new(
        "full eigendecomposition quality (irregular graphs)",
        &["graph", "n", "max ‖Av − λv‖", "eig-sum − trace"],
    );
    for (name, g) in [
        ("petersen", topology::petersen()),
        ("debruijn(6)", topology::de_bruijn(6)),
        ("barbell(8)", topology::barbell(8)),
    ] {
        let l = SymMatrix::laplacian(&g);
        let eig = eigen::symmetric_eigen(&l, true).expect("eigendecomposition");
        let res = eig.max_residual(&l);
        let sum: f64 = eig.values.iter().sum();
        t2.push_row(vec![
            name.to_string(),
            g.n().to_string(),
            format!("{res:.2e}"),
            format!("{:.2e}", (sum - l.trace()).abs()),
        ]);
    }
    report.tables.push(t2);

    // (c) Cheeger sandwich against exhaustive expansion.
    let mut t3 = Table::new(
        "edge expansion α vs λ₂ (exhaustive cuts, n ≤ 16)",
        &[
            "graph",
            "α exact",
            "λ₂/2 (lower)",
            "upper bound",
            "sandwich holds",
        ],
    );
    let mut sandwich_ok = true;
    for (name, g) in [
        ("cycle16", topology::cycle(16)),
        ("path16", topology::path(16)),
        ("hypercube4", topology::hypercube(4)),
        ("star16", topology::star(16)),
        ("barbell8", topology::barbell(8)),
        ("complete12", topology::complete(12)),
    ] {
        let (alpha, _) = expansion::exact_edge_expansion(&g);
        let lambda2 = eigen::laplacian_lambda2(&g).expect("dense λ₂");
        let lo = expansion::expansion_lower_bound(lambda2);
        let hi = expansion::expansion_upper_bound(lambda2, g.max_degree(), g.min_degree());
        let holds = lo <= alpha + 1e-9 && alpha <= hi + 1e-9;
        sandwich_ok &= holds;
        t3.push_row(vec![
            name.to_string(),
            fmt_f64(alpha),
            fmt_f64(lo),
            fmt_f64(hi),
            holds.to_string(),
        ]);
    }
    report.tables.push(t3);

    report.notes.push(format!(
        "max λ₂ deviation from closed forms: {max_err:.2e}; Cheeger sandwich holds on all \
         exhaustively-checked graphs: {sandwich_ok}."
    ));
    report.passed = Some(sandwich_ok && max_err < 1e-6);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_solvers_agree() {
        let report = run(&ExpConfig::quick(43));
        assert!(report.notes[0].contains("sandwich holds on all exhaustively-checked graphs: true"));
        // all residuals tiny
        for row in &report.tables[1].rows {
            let res: f64 = row[2].parse().expect("residual");
            assert!(res < 1e-7, "residual {res}");
        }
    }
}
