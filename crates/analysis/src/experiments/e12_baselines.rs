//! **E12 — the paper's comparison claims** (Section 3).
//!
//! The paper claims Algorithm 1 "converges a constant times faster than
//! the dimension exchange algorithm in \[12\]" (in both the continuous and
//! the discrete model) and situates itself against \[15\]'s first/second-
//! order schemes. This experiment races all protocols from identical
//! states across the standard topologies and reports rounds-to-target,
//! with Algorithm 1's speedup over GM94 in the last column.

use super::{standard_instances, ExpConfig};
use crate::table::{fmt_f64, Report, Table};
use dlb_baselines::{
    FirstOrderContinuous, FirstOrderDiscrete, MatchingExchangeContinuous, MatchingExchangeDiscrete,
    MatchingKind, SecondOrderContinuous, SequentialComparator,
};
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::init::{continuous_loads, discrete_loads, Workload};
use dlb_core::model::{ContinuousBalancer, DiscreteBalancer};
use dlb_core::runner::{run_continuous, run_discrete};
use dlb_core::seq::AdaptiveOrder;
use dlb_core::{bounds, potential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs E12.
pub fn run(cfg: &ExpConfig) -> Report {
    let n = cfg.pick(256, 64);
    let eps = cfg.pick(1e-4, 1e-2);
    let max_rounds = cfg.pick(2_000_000, 200_000);
    let mut report = Report::new(
        "E12",
        "Section 3 comparisons: Algorithm 1 vs dimension exchange [12], FOS/SOS [15]",
    );

    let mut alg1_beats_gm = true;

    // Continuous race.
    let mut t1 = Table::new(
        format!("continuous: rounds to Φ ≤ ε·Φ₀ (n = {n}, ε = {eps:.0e}, spike)"),
        &[
            "topology",
            "alg1",
            "gm94",
            "gm94-greedy",
            "fos",
            "sos",
            "seq",
            "gm94/alg1",
        ],
    );
    for inst in standard_instances(n, cfg.seed) {
        let init = {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x12A);
            continuous_loads(n, 100.0, Workload::Spike, &mut rng)
        };
        let target = eps * potential::phi(&init);
        let race = |b: &mut dyn ContinuousBalancer| -> usize {
            let mut loads = init.clone();
            let out = run_continuous(b, &mut loads, target, max_rounds, false);
            if out.converged {
                out.rounds
            } else {
                max_rounds
            }
        };
        let alg1 = race(&mut ContinuousDiffusion::new(&inst.graph).engine());
        let gm = race(
            &mut MatchingExchangeContinuous::new(&inst.graph, MatchingKind::Proposal, cfg.seed ^ 1)
                .engine(),
        );
        let gm_greedy = race(
            &mut MatchingExchangeContinuous::new(
                &inst.graph,
                MatchingKind::GreedyMaximal,
                cfg.seed ^ 2,
            )
            .engine(),
        );
        let fos = race(&mut FirstOrderContinuous::new(&inst.graph).engine());
        let sos = race(&mut SecondOrderContinuous::with_optimal_beta(&inst.graph).engine());
        let seq = race(
            &mut SequentialComparator::new(&inst.graph, AdaptiveOrder::EdgeIndex, cfg.seed ^ 3)
                .engine(),
        );
        alg1_beats_gm &= gm > alg1;
        t1.push_row(vec![
            inst.name.to_string(),
            alg1.to_string(),
            gm.to_string(),
            gm_greedy.to_string(),
            fos.to_string(),
            sos.to_string(),
            seq.to_string(),
            fmt_f64(gm as f64 / alg1 as f64),
        ]);
    }
    report.tables.push(t1);

    // Discrete race: common target = Algorithm 1's Theorem-6 threshold.
    let avg = cfg.pick(1_000_000i64, 100_000);
    let mut t2 = Table::new(
        format!("discrete: rounds to Φ̂ ≤ n²·64δ³n/λ₂ (n = {n}, spike avg = {avg})"),
        &["topology", "alg1", "gm94", "fos", "gm94/alg1"],
    );
    for inst in standard_instances(n, cfg.seed) {
        let init = {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x12B);
            discrete_loads(n, avg, Workload::Spike, &mut rng)
        };
        let target = bounds::theorem6_threshold_hat(inst.delta(), inst.lambda2, n);
        let race = |b: &mut dyn DiscreteBalancer| -> usize {
            let mut loads = init.clone();
            let out = run_discrete(b, &mut loads, target, max_rounds, false);
            if out.converged {
                out.rounds
            } else {
                max_rounds
            }
        };
        let alg1 = race(&mut DiscreteDiffusion::new(&inst.graph).engine());
        let gm = race(
            &mut MatchingExchangeDiscrete::new(&inst.graph, MatchingKind::Proposal, cfg.seed ^ 4)
                .engine(),
        );
        let fos = race(&mut FirstOrderDiscrete::new(&inst.graph).engine());
        t2.push_row(vec![
            inst.name.to_string(),
            alg1.to_string(),
            gm.to_string(),
            fos.to_string(),
            fmt_f64(gm as f64 / alg1 as f64),
        ]);
    }
    report.tables.push(t2);

    report.notes.push(
        "gm94/alg1 > 1 on every topology: the paper's 'constant times faster' claim over \
         dimension exchange holds in both models (the proven constant is 4; measured \
         speedups vary with topology because GM94's matchings idle most edges)."
            .to_string(),
    );
    report.notes.push(
        "FOS (α = 1/(δ+1)) moves more load per edge than Algorithm 1 (α = 1/(4δ)) and wins \
         per-round on regular graphs; SOS accelerates further on low-λ₂ topologies — \
         consistent with [15]. Algorithm 1's value is the analysis (network-parameter \
         bounds + discrete/dynamic coverage), not raw speed."
            .to_string(),
    );
    report.passed = Some(alg1_beats_gm);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_alg1_beats_gm_everywhere() {
        let report = run(&ExpConfig::quick(41));
        for row in &report.tables[0].rows {
            let alg1: f64 = row[1].parse().expect("alg1 rounds");
            let gm: f64 = row[2].parse().expect("gm rounds");
            assert!(
                gm > alg1,
                "{}: gm {} not slower than alg1 {}",
                row[0],
                gm,
                alg1
            );
        }
    }
}
