//! Convergence-rate estimation from potential traces.
//!
//! The paper's Theorem 4 asserts a per-round contraction
//! `Φ(Lᵗ) ≤ (1 − λ₂/4δ)·Φ(Lᵗ⁻¹)`. Given a measured trace `Φ(L⁰), Φ(L¹), …`
//! these helpers recover the *empirical* contraction factor (geometric-mean
//! and regression estimators), so experiments can compare the measured
//! asymptotic rate against `1 − λ₂/4δ` rather than only checking the
//! round-count bound.

use crate::stats::linear_fit;

/// Geometric-mean per-round contraction factor of a positive, decreasing
/// trace: `(Φ_T/Φ_0)^(1/T)`.
///
/// Robust to noise in individual rounds; undefined (panics) for traces
/// shorter than 2 or hitting exact zero.
pub fn geometric_rate(trace: &[f64]) -> f64 {
    assert!(trace.len() >= 2, "need at least two trace points");
    let first = trace[0];
    let last = *trace.last().expect("non-empty");
    assert!(first > 0.0 && last > 0.0, "trace must stay positive");
    (last / first).powf(1.0 / (trace.len() - 1) as f64)
}

/// Regression estimate of the contraction factor: slope of
/// `ln Φ_t` against `t`, exponentiated. Equals [`geometric_rate`] for an
/// exactly geometric trace but weighs all rounds, not just the endpoints.
/// Also returns the fit's `r²` (near 1 ⇒ the decay really is geometric).
pub fn regression_rate(trace: &[f64]) -> (f64, f64) {
    assert!(trace.len() >= 2, "need at least two trace points");
    assert!(trace.iter().all(|&x| x > 0.0), "trace must stay positive");
    let xs: Vec<f64> = (0..trace.len()).map(|i| i as f64).collect();
    let ys: Vec<f64> = trace.iter().map(|&x| x.ln()).collect();
    let (_, slope, r2) = linear_fit(&xs, &ys);
    (slope.exp(), r2)
}

/// The paper's guaranteed factor `1 − λ₂/(4δ)` for comparison columns.
pub fn theorem4_factor(delta: u32, lambda2: f64) -> f64 {
    1.0 - dlb_core::bounds::theorem4_drop_factor(delta, lambda2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::continuous::ContinuousDiffusion;
    use dlb_core::engine::IntoEngine;
    use dlb_core::runner::run_continuous;
    use dlb_graphs::topology;
    use dlb_spectral::closed_form;

    #[test]
    fn exact_geometric_trace_recovered() {
        let trace: Vec<f64> = (0..20).map(|t| 100.0 * 0.8f64.powi(t)).collect();
        assert!((geometric_rate(&trace) - 0.8).abs() < 1e-12);
        let (rate, r2) = regression_rate(&trace);
        assert!((rate - 0.8).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measured_rate_beats_theorem4_factor() {
        // The empirical asymptotic rate must be at most the guaranteed
        // factor (smaller = faster).
        let n = 32;
        let g = topology::cycle(n);
        let mut loads = vec![0.0; n];
        loads[0] = n as f64 * 100.0;
        let mut exec = ContinuousDiffusion::new(&g).engine();
        let out = run_continuous(&mut exec, &mut loads, 0.0, 300, true);
        let guaranteed = theorem4_factor(2, closed_form::lambda2_cycle(n));
        let measured = geometric_rate(&out.trace);
        assert!(
            measured <= guaranteed + 1e-9,
            "measured factor {measured} worse than guaranteed {guaranteed}"
        );
    }

    #[test]
    fn regression_flags_non_geometric_decay() {
        // Discrete traces plateau: the log-linear fit r² should drop well
        // below 1 once the plateau dominates.
        let mut trace: Vec<f64> = (0..10).map(|t| 1000.0 * 0.5f64.powi(t)).collect();
        trace.extend(std::iter::repeat_n(trace[9], 30)); // plateau
        let (_, r2) = regression_rate(&trace);
        assert!(r2 < 0.9, "r² = {r2} did not flag the plateau");
    }

    #[test]
    #[should_panic(expected = "stay positive")]
    fn zero_trace_rejected() {
        geometric_rate(&[1.0, 0.0]);
    }
}
