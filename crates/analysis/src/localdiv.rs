//! Local divergence of discrete diffusion from its idealized chain
//! (Rabani–Sinclair–Wanka \[16\], reproduced as measurement machinery).
//!
//! RSW analyze discrete load balancing by comparing it to the *idealized*
//! Markov chain `ξ^{t} = M·ξ^{t−1}` (the continuous first-order scheme)
//! and showing that all rounding errors ever introduced are bounded by the
//! **local divergence**
//!
//! ```text
//! Ψ(M) = max_k Σ_{t ≥ 0} Σ_{(i,j) ∈ E} |ξᵢ^{t,k} − ξⱼ^{t,k}|,
//!        ξ^{0,k} = n·e_k   (a unit spike, scaled to total load n),
//! ```
//!
//! for which they prove `Ψ(M) = O(δ·log n / μ)` with `μ = 1 − γ` the
//! eigenvalue gap. Consequently the discrete trajectory stays within
//! `O(Ψ)` of the idealized one in `ℓ∞`. This module measures both
//! quantities empirically; experiment E18 confronts them with the RSW
//! bound across topologies.

use dlb_baselines::FirstOrderDiscrete;
use dlb_core::engine::IntoEngine;
use dlb_graphs::Graph;

/// Applies the FOS matrix `M` (α = 1/(δ+1)) once, matrix-free.
fn apply_fos(g: &Graph, alpha: f64, x: &[f64], y: &mut [f64]) {
    for v in 0..g.n() as u32 {
        let xv = x[v as usize];
        let mut acc = xv;
        for &u in g.neighbors(v) {
            acc += alpha * (x[u as usize] - xv);
        }
        y[v as usize] = acc;
    }
}

/// Result of a local-divergence measurement.
#[derive(Debug, Clone, Copy)]
pub struct LocalDivergence {
    /// Measured `Ψ` (truncated when the per-round contribution falls below
    /// the tolerance; the tail is geometrically negligible).
    pub psi: f64,
    /// Rounds summed before truncation.
    pub rounds: usize,
    /// Whether the truncation tolerance was reached (false = round budget
    /// exhausted first; `psi` is then a lower estimate).
    pub converged: bool,
}

/// Measures `Σ_t Σ_{(i,j)∈E} |ξᵢ − ξⱼ|` for the idealized chain started
/// from a spike of `n` units at `source`.
pub fn local_divergence(g: &Graph, source: u32, max_rounds: usize, tol: f64) -> LocalDivergence {
    let n = g.n();
    assert!((source as usize) < n, "source out of range");
    let alpha = 1.0 / (g.max_degree() as f64 + 1.0);
    let mut x = vec![0.0f64; n];
    x[source as usize] = n as f64;
    let mut y = vec![0.0f64; n];
    let mut psi = 0.0f64;
    for round in 0..max_rounds {
        let contribution: f64 = g
            .edges()
            .iter()
            .map(|&(u, v)| (x[u as usize] - x[v as usize]).abs())
            .sum();
        psi += contribution;
        if contribution < tol {
            return LocalDivergence {
                psi,
                rounds: round + 1,
                converged: true,
            };
        }
        apply_fos(g, alpha, &x, &mut y);
        std::mem::swap(&mut x, &mut y);
    }
    LocalDivergence {
        psi,
        rounds: max_rounds,
        converged: false,
    }
}

/// Measured worst-case `Ψ` over a sample of source nodes (all sources on
/// vertex-transitive graphs give the same value; we sample a few for
/// irregular ones).
pub fn local_divergence_max(
    g: &Graph,
    sources: &[u32],
    max_rounds: usize,
    tol: f64,
) -> LocalDivergence {
    assert!(!sources.is_empty(), "need at least one source");
    let mut best = LocalDivergence {
        psi: 0.0,
        rounds: 0,
        converged: true,
    };
    for &s in sources {
        let d = local_divergence(g, s, max_rounds, tol);
        if d.psi > best.psi {
            best = d;
        }
    }
    best
}

/// RSW's asymptotic bound shape `δ·ln(n)/μ` (constant 1 — experiments
/// report the measured ratio against it, which the theory says is `O(1)`).
pub fn rsw_bound_shape(delta: u32, mu: f64, n: usize) -> f64 {
    assert!(mu > 0.0, "eigenvalue gap must be positive");
    delta as f64 * (n as f64).ln() / mu
}

/// Runs the discrete FOS and its idealized chain in lockstep from the same
/// spike and returns the maximum `ℓ∞` deviation ever observed — the
/// quantity RSW bound by `O(Ψ)`.
pub fn max_discrete_deviation(g: &Graph, source: u32, rounds: usize) -> f64 {
    let n = g.n();
    let alpha = 1.0 / (g.max_degree() as f64 + 1.0);
    let mut ideal = vec![0.0f64; n];
    ideal[source as usize] = n as f64;
    let mut next = vec![0.0f64; n];
    let mut discrete = vec![0i64; n];
    discrete[source as usize] = n as i64;
    let mut exec = FirstOrderDiscrete::new(g).engine();
    let mut worst = 0.0f64;
    for _ in 0..rounds {
        exec.round(&mut discrete);
        apply_fos(g, alpha, &ideal, &mut next);
        std::mem::swap(&mut ideal, &mut next);
        let dev = discrete
            .iter()
            .zip(&ideal)
            .map(|(&d, &c)| (d as f64 - c).abs())
            .fold(0.0f64, f64::max);
        worst = worst.max(dev);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_graphs::topology;
    use dlb_spectral::diffusion::{fos_matrix, gamma};

    #[test]
    fn psi_finite_and_positive_on_cycle() {
        let g = topology::cycle(16);
        let d = local_divergence(&g, 0, 100_000, 1e-9);
        assert!(d.converged, "Ψ sum did not converge");
        assert!(d.psi > 0.0 && d.psi.is_finite());
    }

    #[test]
    fn psi_zero_on_balanced_start_equivalent() {
        // A single-node "graph"… smallest valid case: complete(2) from a
        // spike has divergence 2·(contributions until balanced).
        let g = topology::complete(2);
        let d = local_divergence(&g, 0, 10_000, 1e-12);
        assert!(d.converged);
        // ξ = [2,0] → diff 2, then [2/3·?]: α = 1/2… FOS on K2 balances in
        // one round exactly: contribution 2 then 0.
        assert!((d.psi - 2.0).abs() < 1e-9, "Ψ = {}", d.psi);
    }

    #[test]
    fn psi_within_constant_of_rsw_shape() {
        // Ψ ≤ C·δ ln n/μ with a modest constant on standard topologies.
        for g in [
            topology::cycle(32),
            topology::hypercube(5),
            topology::complete(16),
        ] {
            let mu = 1.0 - gamma(&fos_matrix(&g)).expect("γ");
            let d = local_divergence(&g, 0, 200_000, 1e-9);
            assert!(d.converged);
            let shape = rsw_bound_shape(g.max_degree(), mu, g.n());
            let ratio = d.psi / shape;
            assert!(
                ratio < 50.0,
                "Ψ = {} vs shape {shape}: ratio {ratio} implausibly large",
                d.psi
            );
        }
    }

    #[test]
    fn deviation_bounded_by_psi() {
        // The RSW theorem's empirical content: ‖discrete − ideal‖∞ = O(Ψ).
        for g in [topology::cycle(16), topology::torus2d(4, 4)] {
            let d = local_divergence(&g, 0, 100_000, 1e-9);
            let dev = max_discrete_deviation(&g, 0, 2000);
            assert!(
                dev <= d.psi + 1e-9,
                "deviation {dev} exceeds measured Ψ {}",
                d.psi
            );
        }
    }

    #[test]
    fn max_over_sources_at_least_single() {
        let g = topology::binary_tree(15);
        let single = local_divergence(&g, 0, 100_000, 1e-9);
        let multi = local_divergence_max(&g, &[0, 7, 14], 100_000, 1e-9);
        assert!(multi.psi >= single.psi);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_rejected() {
        local_divergence(&topology::path(4), 9, 10, 1e-9);
    }
}
