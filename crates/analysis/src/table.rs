//! Fixed-width text tables and CSV output for the experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each must match the header arity).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// If the arity does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity mismatch in '{}'",
            self.title
        );
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (c, w) in cells.iter().zip(&widths) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = *w);
                first = false;
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// CSV rendering (headers + rows; cells containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// A full experiment report: one or more tables plus free-form notes.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id, e.g. `"E1"`.
    pub id: &'static str,
    /// Human title (theorem/lemma it validates).
    pub title: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Interpretation notes printed under the tables.
    pub notes: Vec<String>,
    /// Machine-checkable verdict: did the paper's claim hold in this run?
    /// `None` for purely descriptive reports. Drives `repro verify`.
    pub passed: Option<bool>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        Report {
            id,
            title: title.into(),
            tables: Vec::new(),
            notes: Vec::new(),
            passed: None,
        }
    }

    /// Renders the report for the terminal / EXPERIMENTS.md.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        for t in &self.tables {
            out.push('\n');
            out.push_str(&t.render());
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                let _ = writeln!(out, "note: {n}");
            }
        }
        if let Some(passed) = self.passed {
            let _ = writeln!(out, "verdict: {}", if passed { "PASS" } else { "FAIL" });
        }
        out
    }
}

/// Formats a float compactly for tables (3 significant-ish decimals,
/// scientific for very large/small magnitudes).
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        let lines: Vec<&str> = r.lines().collect();
        // header, separator, two rows
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    fn report_renders_notes() {
        let mut r = Report::new("E0", "demo experiment");
        r.notes.push("hello".into());
        let s = r.render();
        assert!(s.contains("# E0 — demo experiment"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert!(fmt_f64(1.5e9).contains('e'));
        assert!(fmt_f64(1e-9).contains('e'));
        assert_eq!(fmt_f64(0.5), "0.5000");
        assert_eq!(fmt_f64(123.456), "123.5");
    }
}
