//! Parallel Monte-Carlo trial runner.
//!
//! Trials are independent by construction (each gets its own seed derived
//! from the base seed), so they fan out across scoped threads via an atomic
//! work counter. Results land in a pre-sized slot vector, so the output
//! order is by trial index regardless of scheduling — experiment tables are
//! bitwise reproducible from the base seed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used by [`parallel_trials`] by default
/// (the engine's recommendation, which honours `DLB_THREADS`).
pub fn default_threads() -> usize {
    dlb_core::engine::recommended_threads()
}

/// Maps `f` over `0..items` on `threads` workers; results indexed by item.
pub fn parallel_map<T, F>(items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, items.max(1));
    if threads == 1 {
        return (0..items).map(f).collect();
    }
    let counter = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..items).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= items {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("slot lock") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every slot filled")
        })
        .collect()
}

/// Runs `trials` independent experiments in parallel; trial `i` receives
/// the deterministic seed `base_seed ⊕ golden(i)`.
pub fn parallel_trials<T, F>(trials: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    parallel_map(trials, default_threads(), |i| f(trial_seed(base_seed, i)))
}

/// Derives the seed of trial `i` (splitmix-style golden-ratio sequence, so
/// neighbouring trials get decorrelated streams).
pub fn trial_seed(base_seed: u64, i: usize) -> u64 {
    let mut z = base_seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let out = parallel_map(100, 8, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn map_single_thread_path() {
        let out = parallel_map(5, 1, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn map_zero_items() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn trials_deterministic() {
        let a = parallel_trials(32, 42, |seed| seed.wrapping_mul(3));
        let b = parallel_trials(32, 42, |seed| seed.wrapping_mul(3));
        assert_eq!(a, b);
    }

    #[test]
    fn trial_seeds_distinct() {
        let mut seeds: Vec<u64> = (0..1000).map(|i| trial_seed(7, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn heavy_parallelism_correct() {
        let out = parallel_map(10_000, 16, |i| (i % 7) as u64);
        let total: u64 = out.iter().sum();
        let expect: u64 = (0..10_000u64).map(|i| i % 7).sum();
        assert_eq!(total, expect);
    }
}
