//! Summary statistics for Monte-Carlo experiment results.

/// Summary of a sample of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n−1` denominator; 0 for `n ≤ 1`).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (midpoint of the two central order statistics for even `n`).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of a non-empty sample.
    pub fn from_slice(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary of an empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval on
    /// the mean: `1.96·σ/√n`.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n <= 1 {
            0.0
        } else {
            1.96 * self.std / (self.n as f64).sqrt()
        }
    }

    /// `mean ± ci` formatted with `prec` decimals.
    pub fn format_mean_ci(&self, prec: usize) -> String {
        format!(
            "{:.prec$} ± {:.prec$}",
            self.mean,
            self.ci95_half_width(),
            prec = prec
        )
    }
}

/// Empirical quantile (nearest-rank) of a sample; `q ∈ [0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Ordinary least-squares fit `y ≈ a + b·x`; returns `(a, b, r²)`.
///
/// Used by experiment E5 to test the paper's claim that the discrete
/// plateau scales *linearly* in `n` (against \[15\]'s quadratic threshold).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "mismatched fit inputs");
    assert!(xs.len() >= 2, "fit needs at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    assert!(sxx > 0.0, "degenerate x values");
    let b = sxy / sxx;
    let a = my - b * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (a, b, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::from_slice(&[3.0, 3.0, 3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        // Sample variance = ((1.5)² + (0.5)² + (0.5)² + (1.5)²)/3 = 5/3.
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn median_odd() {
        let s = Summary::from_slice(&[9.0, 1.0, 5.0]);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let samples: Vec<f64> = (0..400).map(|i| 1.0 + (i % 4) as f64).collect();
        let large = Summary::from_slice(&samples);
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn quantile_extremes() {
        let v = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 9.0);
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let (a, b, r2) = linear_fit(&xs, &ys);
        assert!((a - 2.0).abs() < 1e-9);
        assert!((b - 3.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_noisy_r2_below_one() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.5, 1.1, 3.2];
        let (_, b, r2) = linear_fit(&xs, &ys);
        assert!(b > 0.0);
        assert!(r2 < 1.0 && r2 > 0.5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        Summary::from_slice(&[]);
    }
}
