//! `repro` — regenerates every experiment table of the reproduction.
//!
//! ```text
//! repro [--quick] [--seed N] [--csv DIR] <experiment|all|verify>
//!
//!   experiment   e1 … e18 (see DESIGN.md §4), or `all`
//!   verify       run everything, print a PASS/FAIL line per experiment,
//!                exit nonzero if any paper claim failed (the CI gate)
//!   --quick      shrunken sizes/trials (the CI configuration)
//!   --seed N     base seed (default 0xBF2006)
//!   --csv DIR    additionally dump every table as CSV into DIR
//! ```
//!
//! The output of `repro all` (full mode) is what `EXPERIMENTS.md` records.

use dlb_analysis::experiments::{run_all, run_by_id, ExpConfig};
use dlb_analysis::Report;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: repro [--quick] [--seed N] [--csv DIR] <e1..e18|all|verify>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut cfg = ExpConfig::default();
    let mut csv_dir: Option<String> = None;
    let mut target: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--seed" => {
                let Some(v) = args.next() else { return usage() };
                let Ok(seed) = v.parse() else {
                    eprintln!("invalid seed: {v}");
                    return usage();
                };
                cfg.seed = seed;
            }
            "--csv" => {
                let Some(dir) = args.next() else {
                    return usage();
                };
                csv_dir = Some(dir);
            }
            "-h" | "--help" => return usage(),
            other if target.is_none() => target = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                return usage();
            }
        }
    }
    let Some(target) = target else { return usage() };

    if target.eq_ignore_ascii_case("verify") {
        let reports = run_all(&cfg);
        let mut failed = 0usize;
        for r in &reports {
            let verdict = match r.passed {
                Some(true) => "PASS",
                Some(false) => {
                    failed += 1;
                    "FAIL"
                }
                None => "----",
            };
            println!("{verdict}  {:>4}  {}", r.id, r.title);
        }
        return if failed == 0 {
            println!("\nall paper claims validated.");
            ExitCode::SUCCESS
        } else {
            println!("\n{failed} experiment(s) FAILED.");
            ExitCode::FAILURE
        };
    }

    let reports: Vec<Report> = if target.eq_ignore_ascii_case("all") {
        run_all(&cfg)
    } else {
        match run_by_id(&target, &cfg) {
            Some(r) => vec![r],
            None => {
                eprintln!("unknown experiment: {target}");
                return usage();
            }
        }
    };

    println!(
        "# BFH-2006 reproduction — mode: {}, seed: {:#x}\n",
        if cfg.quick { "quick" } else { "full" },
        cfg.seed
    );
    for report in &reports {
        println!("{}", report.render());
    }

    if let Some(dir) = csv_dir {
        let dir = Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for report in &reports {
            for (k, table) in report.tables.iter().enumerate() {
                let file = dir.join(format!("{}_{k}.csv", report.id.to_lowercase()));
                if let Err(e) = std::fs::write(&file, table.to_csv()) {
                    eprintln!("cannot write {}: {e}", file.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("csv tables written to {}", dir.display());
    }
    ExitCode::SUCCESS
}
