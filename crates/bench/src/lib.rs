#![deny(rustdoc::broken_intra_doc_links)]

//! Shared fixtures for the Criterion benchmarks and the `repro` binary.
//!
//! Every bench group pulls its instances from here so that bench names
//! and experiment tables refer to identical graphs and workloads.

use dlb_graphs::{topology, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed used by all benchmark fixtures.
pub const BENCH_SEED: u64 = 0xBE_2006;

/// The topology sweep used by the round-cost benches (name, graph).
/// `n = 1024` — large enough that per-round cost dominates setup, small
/// enough that a full `cargo bench` stays in minutes.
pub fn bench_graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    vec![
        ("cycle", topology::cycle(1024)),
        ("torus2d", topology::torus2d(32, 32)),
        ("hypercube", topology::hypercube(10)),
        ("rreg8", topology::random_regular(1024, 8, &mut rng)),
    ]
}

/// A deterministic spiky load vector for continuous benches.
pub fn spike_continuous(n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    v[0] = n as f64 * 100.0;
    v
}

/// A deterministic spiky token vector for discrete benches.
pub fn spike_discrete(n: usize) -> Vec<i64> {
    let mut v = vec![0i64; n];
    v[0] = n as i64 * 100_000;
    v
}

/// Machine-readable benchmark output (`BENCH_*.json`), written without any
/// serde dependency so the offline workspace stays dependency-free.
///
/// The JSON tracks the perf trajectory across PRs: each record is one
/// benchmark variant with its median/min per-round time, tagged with
/// topology, size, thread count and stats mode so future sessions can
/// diff like against like.
pub mod perf_json {
    use std::io::Write;

    /// One benchmark result destined for the JSON report.
    #[derive(Debug, Clone)]
    pub struct PerfRecord {
        /// Full benchmark id as printed by the harness.
        pub id: String,
        /// Logical group (`gather`, `engine_round`, `convergence_run`).
        pub group: String,
        /// Variant within the group (`serial/full`, `pool4/off`, …).
        pub variant: String,
        /// Topology family of the instance.
        pub topology: String,
        /// Node count of the instance.
        pub n: usize,
        /// Worker threads (1 = serial executor).
        pub threads: usize,
        /// Rounds executed per timed iteration (per-round figures divide
        /// by this).
        pub rounds_per_iter: usize,
        /// Median nanoseconds per round.
        pub median_ns_per_round: f64,
        /// Fastest-sample nanoseconds per round.
        pub min_ns_per_round: f64,
        /// Timed samples behind the figures.
        pub samples: usize,
        /// Sharded/message-backend only: edges crossing shards in the
        /// plan the variant executed (communication volume). Omitted from
        /// the JSON when absent.
        pub edge_cut: Option<usize>,
        /// Sharded/message-backend only: total halo entries exchanged per
        /// round.
        pub halo: Option<usize>,
        /// Message-backend only: batched shard→shard messages posted per
        /// round.
        pub messages: Option<usize>,
        /// Message-backend only: load values carried by those messages
        /// per round.
        pub values_sent: Option<usize>,
        /// Message-backend only: owned load values the coordinator
        /// shipped to workers in the measured round (zero on resident
        /// steady-state rounds).
        pub owned_values_in: Option<usize>,
        /// Message-backend only: owned load values workers shipped back
        /// in the measured round (zero on resident collect-free rounds).
        pub owned_values_out: Option<usize>,
        /// Resident message rounds only: workload delta values routed to
        /// owner shards in the measured round.
        pub delta_values: Option<usize>,
        /// Resident message rounds only: collect phases in the measured
        /// round.
        pub collects: Option<usize>,
        /// Process-backend only: framed `dlb-wire/1` bytes the
        /// coordinator wrote to worker sockets in the measured round.
        pub wire_bytes_out: Option<usize>,
        /// Process-backend only: framed `dlb-wire/1` bytes the
        /// coordinator read back in the measured round.
        pub wire_bytes_in: Option<usize>,
        /// Thread-scaling records only: this variant's speedup relative
        /// to the serial single-thread baseline of the same run
        /// (`serial_median / variant_median`; > 1 is faster than
        /// serial). Omitted from the JSON when absent.
        pub speedup_vs_serial: Option<f64>,
    }

    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }

    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.1}")
        } else {
            "null".to_string()
        }
    }

    /// Writes the report to `path` (pretty-printed, stable key order —
    /// diff-friendly across PRs). Fails loudly: a bench that cannot
    /// record its trajectory should not pretend it succeeded.
    pub fn write(
        path: &str,
        bench: &str,
        quick: bool,
        threads_available: usize,
        records: &[PerfRecord],
    ) -> std::io::Result<()> {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dlb-bench/1\",\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", esc(bench)));
        out.push_str(&format!("  \"quick\": {quick},\n"));
        out.push_str(&format!("  \"threads_available\": {threads_available},\n"));
        out.push_str("  \"units\": \"ns_per_round\",\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in records.iter().enumerate() {
            let mut shard_meta = String::new();
            if let Some(cut) = r.edge_cut {
                shard_meta.push_str(&format!(", \"edge_cut\": {cut}"));
            }
            if let Some(halo) = r.halo {
                shard_meta.push_str(&format!(", \"halo\": {halo}"));
            }
            if let Some(messages) = r.messages {
                shard_meta.push_str(&format!(", \"messages\": {messages}"));
            }
            if let Some(values) = r.values_sent {
                shard_meta.push_str(&format!(", \"values_sent\": {values}"));
            }
            if let Some(v) = r.owned_values_in {
                shard_meta.push_str(&format!(", \"owned_values_in\": {v}"));
            }
            if let Some(v) = r.owned_values_out {
                shard_meta.push_str(&format!(", \"owned_values_out\": {v}"));
            }
            if let Some(v) = r.delta_values {
                shard_meta.push_str(&format!(", \"delta_values\": {v}"));
            }
            if let Some(v) = r.collects {
                shard_meta.push_str(&format!(", \"collects\": {v}"));
            }
            if let Some(v) = r.wire_bytes_out {
                shard_meta.push_str(&format!(", \"wire_bytes_out\": {v}"));
            }
            if let Some(v) = r.wire_bytes_in {
                shard_meta.push_str(&format!(", \"wire_bytes_in\": {v}"));
            }
            if let Some(speedup) = r.speedup_vs_serial {
                if speedup.is_finite() {
                    shard_meta.push_str(&format!(", \"speedup_vs_serial\": {speedup:.3}"));
                }
            }
            // Each record carries the schema tag too, so consumers that
            // slurp individual records (jq '.results[]', CI validators)
            // can check versioning without the enclosing document.
            out.push_str(&format!(
                "    {{\"schema\": \"dlb-bench/1\", \
                 \"id\": \"{}\", \"group\": \"{}\", \"variant\": \"{}\", \
                 \"topology\": \"{}\", \"n\": {}, \"threads\": {}, \
                 \"rounds_per_iter\": {}, \"median_ns_per_round\": {}, \
                 \"min_ns_per_round\": {}, \"samples\": {}{}}}{}\n",
                esc(&r.id),
                esc(&r.group),
                esc(&r.variant),
                esc(&r.topology),
                r.n,
                r.threads,
                r.rounds_per_iter,
                num(r.median_ns_per_round),
                num(r.min_ns_per_round),
                r.samples,
                shard_meta,
                if i + 1 == records.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        let mut f = std::fs::File::create(path)?;
        f.write_all(out.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_json_records_carry_the_schema_tag() {
        let rec = perf_json::PerfRecord {
            id: "engine_round/serial/full".into(),
            group: "engine_round".into(),
            variant: "serial/full".into(),
            topology: "torus2d".into(),
            n: 1024,
            threads: 1,
            rounds_per_iter: 8,
            median_ns_per_round: 1234.5,
            min_ns_per_round: 1200.0,
            samples: 10,
            edge_cut: None,
            halo: None,
            messages: None,
            values_sent: None,
            owned_values_in: None,
            owned_values_out: None,
            delta_values: None,
            collects: None,
            wire_bytes_out: None,
            wire_bytes_in: None,
            speedup_vs_serial: None,
        };
        let path = std::env::temp_dir().join("dlb_bench_schema_test.json");
        let path = path.to_str().unwrap();
        perf_json::write(path, "engine", true, 4, &[rec]).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).ok();
        assert!(text.contains("\"schema\": \"dlb-bench/1\",\n"), "{text}");
        let record_line = text
            .lines()
            .find(|l| l.contains("\"id\""))
            .expect("a record line");
        assert!(
            record_line
                .trim_start()
                .starts_with("{\"schema\": \"dlb-bench/1\""),
            "per-record schema tag missing: {record_line}"
        );
    }

    #[test]
    fn fixtures_consistent() {
        for (name, g) in bench_graphs() {
            assert_eq!(g.n(), 1024, "{name}");
        }
        assert_eq!(spike_continuous(8).iter().sum::<f64>(), 800.0);
        assert_eq!(spike_discrete(8).iter().sum::<i64>(), 800_000);
    }
}
