//! Shared fixtures for the Criterion benchmarks and the `repro` binary.
//!
//! Every bench group pulls its instances from here so that bench names
//! and experiment tables refer to identical graphs and workloads.

use dlb_graphs::{topology, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed used by all benchmark fixtures.
pub const BENCH_SEED: u64 = 0xBE_2006;

/// The topology sweep used by the round-cost benches (name, graph).
/// `n = 1024` — large enough that per-round cost dominates setup, small
/// enough that a full `cargo bench` stays in minutes.
pub fn bench_graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    vec![
        ("cycle", topology::cycle(1024)),
        ("torus2d", topology::torus2d(32, 32)),
        ("hypercube", topology::hypercube(10)),
        ("rreg8", topology::random_regular(1024, 8, &mut rng)),
    ]
}

/// A deterministic spiky load vector for continuous benches.
pub fn spike_continuous(n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    v[0] = n as f64 * 100.0;
    v
}

/// A deterministic spiky token vector for discrete benches.
pub fn spike_discrete(n: usize) -> Vec<i64> {
    let mut v = vec![0i64; n];
    v[0] = n as i64 * 100_000;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_consistent() {
        for (name, g) in bench_graphs() {
            assert_eq!(g.n(), 1024, "{name}");
        }
        assert_eq!(spike_continuous(8).iter().sum::<f64>(), 800.0);
        assert_eq!(spike_discrete(8).iter().sum::<i64>(), 800_000);
    }
}
