//! Spectral toolkit costs (experiment E13): dense QL vs Lanczos for `λ₂`,
//! and the dense solve that prices the per-round spectra of E6/E7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_graphs::topology;
use dlb_spectral::{eigen, lanczos};
use std::hint::black_box;
use std::time::Duration;

fn spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("lambda2");
    for side in [8usize, 16, 32] {
        let g = topology::torus2d(side, side);
        let n = side * side;
        group.bench_with_input(BenchmarkId::new("dense_ql", n), &g, |b, g| {
            b.iter(|| black_box(eigen::laplacian_lambda2(g).expect("λ₂")));
        });
        group.bench_with_input(BenchmarkId::new("lanczos", n), &g, |b, g| {
            b.iter(|| {
                black_box(lanczos::lanczos_lambda2(
                    g,
                    lanczos::LanczosOptions::default(),
                ))
            });
        });
    }
    // Lanczos-only scaling beyond the dense regime.
    for side in [64usize, 128] {
        let g = topology::torus2d(side, side);
        let n = side * side;
        group.bench_with_input(BenchmarkId::new("lanczos", n), &g, |b, g| {
            b.iter(|| {
                black_box(lanczos::lanczos_lambda2(
                    g,
                    lanczos::LanczosOptions::default(),
                ))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = spectral
}
criterion_main!(benches);
