//! Algorithm 2 costs (experiments E8/E10/E11): partner sampling and the
//! concurrent link-set round, continuous and discrete.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_bench::{spike_continuous, spike_discrete};
use dlb_core::engine::IntoEngine;
use dlb_core::random_partner::{sample_partners, RandomPartnerContinuous, RandomPartnerDiscrete};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn partners(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_partner");
    for n in [1024usize, 16384] {
        group.bench_with_input(BenchmarkId::new("sample", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| black_box(sample_partners(n, &mut rng)));
        });
        group.bench_with_input(BenchmarkId::new("round_continuous", n), &n, |b, &n| {
            let mut exec = RandomPartnerContinuous::new(n, 7).engine();
            let mut loads = spike_continuous(n);
            b.iter(|| black_box(exec.round(&mut loads)));
        });
        group.bench_with_input(BenchmarkId::new("round_discrete", n), &n, |b, &n| {
            let mut exec = RandomPartnerDiscrete::new(n, 7).engine();
            let mut loads = spike_discrete(n);
            b.iter(|| black_box(exec.round(&mut loads)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = partners
}
criterion_main!(benches);
