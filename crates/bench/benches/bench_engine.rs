//! Engine gather-kernel benchmark: old-style per-round degree-lookup
//! gather vs. the engine's precomputed-divisor gather, on a 1M-node torus.
//!
//! The legacy executors recomputed `4·max(dᵢ, dⱼ)` inside the hot loop
//! (two CSR degree lookups + `max` + int→float convert per neighbour
//! slot); the engine materializes those divisors once, CSR-slot-aligned,
//! at protocol construction. This bench isolates exactly that difference:
//! both variants run the same full-vector gather over the same snapshot.
//!
//! Also measures the full engine round (gather + stats + potentials),
//! serial vs. pooled-parallel, on the same instance. Set `DLB_THREADS` to
//! cap the pool on shared machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_core::continuous::{self, ContinuousDiffusion};
use dlb_core::engine::{recommended_threads, IntoEngine, Protocol};
use dlb_graphs::topology;
use std::hint::black_box;
use std::time::Duration;

fn gather_kernels(c: &mut Criterion) {
    let side = 1000; // n = 1,000,000
    let g = topology::torus2d(side, side);
    let n = g.n();
    let snapshot: Vec<f64> = (0..n).map(|i| ((i * 131 + 17) % 4099) as f64).collect();
    let mut out = vec![0.0f64; n];

    let mut group = c.benchmark_group("gather_1m_torus");

    // The on-the-fly reference kernel is exactly what the legacy executors
    // ran in their hot loop.
    group.bench_function("legacy_degree_lookup", |b| {
        b.iter(|| {
            for v in 0..n as u32 {
                out[v as usize] = continuous::node_new_load(&g, &snapshot, v);
            }
            black_box(out[0])
        });
    });

    let proto = ContinuousDiffusion::new(&g);
    group.bench_function("precomputed_weights", |b| {
        b.iter(|| {
            for v in 0..n as u32 {
                out[v as usize] = proto.node_new_load(&snapshot, v);
            }
            black_box(out[0])
        });
    });

    group.finish();
}

fn engine_rounds(c: &mut Criterion) {
    let side = 1000;
    let g = topology::torus2d(side, side);
    let n = g.n();
    let init: Vec<f64> = (0..n).map(|i| ((i * 131 + 17) % 4099) as f64).collect();

    let mut group = c.benchmark_group("engine_round_1m_torus");

    group.bench_function("serial", |b| {
        let mut engine = ContinuousDiffusion::new(&g).engine();
        let mut loads = init.clone();
        b.iter(|| black_box(engine.round(&mut loads)));
    });

    let avail = recommended_threads();
    for threads in [2usize, 4, 8] {
        if threads > 2 * avail {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("pool", threads),
            &threads,
            |b, &threads| {
                let mut engine = ContinuousDiffusion::new(&g).engine_parallel(threads);
                let mut loads = init.clone();
                b.iter(|| black_box(engine.round(&mut loads)));
            },
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_millis(2500));
    targets = gather_kernels, engine_rounds
}
criterion_main!(benches);
