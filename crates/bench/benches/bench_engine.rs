//! Engine benchmark with a machine-readable perf trajectory.
//!
//! Three groups on one torus instance (1M nodes by default):
//!
//! - **gather** — the raw gather kernel, old-style per-round degree-lookup
//!   vs. the engine's precomputed CSR-slot divisors (PR 1's comparison,
//!   kept as the historical baseline line in the trajectory);
//! - **engine_round** — one full `Engine::round` under each [`StatsMode`]
//!   (`full`, `phionly`, `every10`, `off`), serial and pooled. The round
//!   is zero-copy double-buffered, so `off` measures the gather alone and
//!   the gap to `full` is exactly the statistics cost;
//! - **sharded_round** — one `Engine::round` on the sharded backend
//!   (range and BFS partitions at several shard counts). Each record
//!   carries the plan's `edge_cut` and `halo` size in the JSON, so the
//!   perf trajectory tracks communication volume alongside per-round ms —
//!   the numbers a distributed backend's exchange step would pay;
//! - **message_round** — one `Engine::round` on the message-passing
//!   backend (one shard-isolated worker per shard, halo values crossing
//!   shards only as batched channel messages). Each record additionally
//!   carries the round's actual `messages` and `values_sent`, measuring
//!   what shard isolation costs on shared memory relative to
//!   `sharded_round`'s zero-copy scatter — the gap is the price of the
//!   ownership transfer plus the exchange itself. The `resident-*`
//!   variants run the same instances through `Engine::round_resident`
//!   (workers keep their owned loads; steady-state stats-off rounds
//!   move zero owned values through the coordinator, which the bench
//!   asserts via the recorded `owned_values_in/out`, `delta_values`
//!   and `collects` counters) — the legacy-vs-resident gap within this
//!   group isolates the ownership-transfer tax alone;
//! - **process_round** — one `Engine::round` on the process backend
//!   (each shard a `dlb-shard-worker` OS process, all traffic framed
//!   `dlb-wire/1` over Unix sockets; `range2p`/`bfs8p` × `full`/`off`).
//!   Each record carries the framed `wire_bytes_out/in` the coordinator
//!   moved in the measured round; the gap to `message_round` on the same
//!   partition is the price of process isolation (serialization +
//!   syscalls in place of in-process channels);
//! - **fault_overhead** — one `Engine::round` (stats off) on the sharded
//!   and message backends with fault injection `absent` vs. `armed_idle`
//!   (a `FaultPlan` installed whose only event never fires). `absent`
//!   runs the legacy unsupervised path and must stay at parity with the
//!   prior trajectory (the robustness acceptance: ≤ 1% on the fault-free
//!   hot path); the gap to `armed_idle` is the explicit price of arming
//!   supervision (timeout-based receives) even when nothing fires;
//! - **telemetry_overhead** — one `Engine::round` (stats off) with the
//!   telemetry recorder `off` (the no-op branch, must sit in the noise
//!   band of the pre-telemetry trajectory) vs. `armed` (every per-phase
//!   span recorded into preallocated rings; acceptance: ≤ 5% over `off`
//!   on the 1M-node torus), serial and message backends;
//! - **kernel_gather** — the degree-specialized kernel dispatch layer:
//!   one serial `Engine::round` (stats off — the gather alone) per
//!   [`KernelKind`] (`scalar` | `unrolled` | `simd`) on a degree-4
//!   torus, a regular hypercube, and an irregular tree whose short
//!   degree runs defeat the run-block schedule. Same computation, same
//!   bits — the group measures exactly what each dispatch flavour buys;
//! - **thread_scaling** — one `Engine::round` (stats off) for every
//!   backend at every thread count `1..=available`: serial once,
//!   pool/sharded/message per count (shards = threads for the sharded
//!   and message rows). Each record carries `speedup_vs_serial`
//!   (serial median / variant median, computed after the run), making
//!   the scaling protocol a first-class part of the trajectory;
//! - **convergence_run** — a fixed-round end-to-end run through
//!   `run_continuous` (driver + on-demand `Φ` fallback included), the
//!   number the ROADMAP's speedup targets are stated against;
//! - **scenario_run** — a fixed-round online-workload run through
//!   `dlb_workloads::run_driven` (arrivals + drain applied between
//!   rounds, full per-round time series recorded): the cost of the
//!   scenario subsystem relative to a bare convergence run, plus the
//!   workload-application overhead itself (`no-workload` vs
//!   `bursty-drain` variants).
//!
//! Every result is also appended to `BENCH_engine.json` at the repo root
//! (median/min ns per round, tagged with topology, `n`, threads, variant)
//! so the perf trajectory is tracked across PRs. Set `DLB_BENCH_QUICK=1`
//! for a small instance (CI smoke); set `DLB_THREADS` to cap the pool on
//! shared machines. Under `cargo test --benches` (`--test` flag) nothing
//! is written.
//!
//! [`StatsMode`]: dlb_core::engine::StatsMode

use criterion::{take_reports, Criterion};
use dlb_bench::perf_json::{self, PerfRecord};
use dlb_core::continuous::{self, ContinuousDiffusion};
use dlb_core::engine::{recommended_threads, Backend, Engine, IntoEngine, Protocol, StatsMode};
use dlb_core::runner::run_continuous;
use dlb_core::{FaultKind, FaultPlan, KernelKind, Telemetry};
use dlb_graphs::{topology, Graph, PartitionSpec};
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Duration;

/// Metadata joined with the harness reports when emitting JSON.
struct Meta {
    group: &'static str,
    variant: String,
    rounds_per_iter: usize,
    threads: usize,
    /// Sharded/message variants: the plan's edge cut and halo size.
    edge_cut: Option<usize>,
    halo: Option<usize>,
    /// Message variants: per-round batched messages and values moved.
    messages: Option<usize>,
    values_sent: Option<usize>,
    /// Message variants: coordinator-transfer volume of the measured
    /// round (owned values in/out, routed deltas, collect phases) —
    /// zero owned transfer on resident steady-state rounds.
    owned_values_in: Option<usize>,
    owned_values_out: Option<usize>,
    delta_values: Option<usize>,
    collects: Option<usize>,
    /// Process variants: framed `dlb-wire/1` bytes the coordinator wrote
    /// to / read from the worker sockets in the measured round.
    wire_bytes_out: Option<usize>,
    wire_bytes_in: Option<usize>,
    /// Groups running off the shared torus instance leave these `None`;
    /// `kernel_gather` benches its own per-topology instances.
    topology: Option<&'static str>,
    n: Option<usize>,
}

impl Meta {
    fn new(group: &'static str, variant: String, rounds_per_iter: usize, threads: usize) -> Meta {
        Meta {
            group,
            variant,
            rounds_per_iter,
            threads,
            edge_cut: None,
            halo: None,
            messages: None,
            values_sent: None,
            owned_values_in: None,
            owned_values_out: None,
            delta_values: None,
            collects: None,
            wire_bytes_out: None,
            wire_bytes_in: None,
            topology: None,
            n: None,
        }
    }
}

struct Instance {
    g: Graph,
    init: Vec<f64>,
    side: usize,
}

fn mode_name(mode: StatsMode) -> &'static str {
    match mode {
        StatsMode::Full => "full",
        StatsMode::EveryK(_) => "every10",
        StatsMode::PhiOnly => "phionly",
        StatsMode::Off => "off",
    }
}

fn gather_kernels(c: &mut Criterion, inst: &Instance, meta: &mut HashMap<String, Meta>) {
    let n = inst.g.n();
    let mut out = vec![0.0f64; n];
    let mut group = c.benchmark_group("gather");

    // The on-the-fly reference kernel is exactly what the legacy executors
    // ran in their hot loop.
    for (variant, legacy) in [
        ("legacy_degree_lookup", true),
        ("precomputed_weights", false),
    ] {
        meta.insert(
            format!("gather/{variant}"),
            Meta::new("gather", variant.to_string(), 1, 1),
        );
        let proto = ContinuousDiffusion::new(&inst.g);
        group.bench_function(variant, |b| {
            b.iter(|| {
                for v in 0..n as u32 {
                    out[v as usize] = if legacy {
                        continuous::node_new_load(&inst.g, &inst.init, v)
                    } else {
                        proto.node_new_load(&inst.init, v)
                    };
                }
                black_box(out[0])
            });
        });
    }
    group.finish();
}

fn pool_sizes() -> Vec<usize> {
    let avail = recommended_threads();
    [2usize, 4, 8]
        .into_iter()
        .filter(|&t| t <= 2 * avail)
        .collect()
}

fn engine_rounds(c: &mut Criterion, inst: &Instance, meta: &mut HashMap<String, Meta>) {
    let modes = [
        StatsMode::Full,
        StatsMode::PhiOnly,
        StatsMode::EveryK(10),
        StatsMode::Off,
    ];
    let mut group = c.benchmark_group("engine_round");

    for mode in modes {
        let variant = format!("serial/{}", mode_name(mode));
        meta.insert(
            format!("engine_round/{variant}"),
            Meta::new("engine_round", variant.clone(), 1, 1),
        );
        group.bench_function(variant, |b| {
            let mut engine = ContinuousDiffusion::new(&inst.g)
                .engine()
                .with_stats_mode(mode);
            let mut loads = inst.init.clone();
            b.iter(|| black_box(engine.round(&mut loads).map(|s| s.phi_after)));
        });
    }

    for threads in pool_sizes() {
        for mode in [StatsMode::Full, StatsMode::Off] {
            let variant = format!("pool{threads}/{}", mode_name(mode));
            meta.insert(
                format!("engine_round/{variant}"),
                Meta::new("engine_round", variant.clone(), 1, threads),
            );
            group.bench_function(variant, |b| {
                let mut engine = ContinuousDiffusion::new(&inst.g)
                    .engine_parallel(threads)
                    .with_stats_mode(mode);
                let mut loads = inst.init.clone();
                b.iter(|| black_box(engine.round(&mut loads).map(|s| s.phi_after)));
            });
        }
    }
    group.finish();
}

fn sharded_rounds(c: &mut Criterion, inst: &Instance, meta: &mut HashMap<String, Meta>) {
    let mut group = c.benchmark_group("sharded_round");
    let threads = pool_sizes().last().copied().unwrap_or(2);

    let mut specs = Vec::new();
    for shards in [threads.max(2), 4 * threads.max(2)] {
        specs.push(PartitionSpec::Range { shards });
        specs.push(PartitionSpec::Bfs { shards });
    }
    for spec in specs {
        for mode in [StatsMode::Full, StatsMode::Off] {
            let variant = format!(
                "{}{}x{threads}t/{}",
                spec.strategy_name(),
                spec.shards(),
                mode_name(mode)
            );
            let mut engine = ContinuousDiffusion::new(&inst.g)
                .engine_sharded(spec, threads)
                .with_stats_mode(mode);
            let mut loads = inst.init.clone();
            // Warm one round so the shard plan exists and its edge-cut /
            // halo metadata can ride along in the JSON records.
            engine.round(&mut loads);
            let metrics = engine.shard_metrics().expect("plan derived");
            let mut m = Meta::new("sharded_round", variant.clone(), 1, threads);
            m.edge_cut = Some(metrics.edge_cut);
            m.halo = Some(metrics.halo);
            meta.insert(format!("sharded_round/{variant}"), m);
            group.bench_function(variant, |b| {
                b.iter(|| black_box(engine.round(&mut loads).map(|s| s.phi_after)));
            });
        }
    }
    group.finish();
}

fn message_rounds(c: &mut Criterion, inst: &Instance, meta: &mut HashMap<String, Meta>) {
    let mut group = c.benchmark_group("message_round");
    let workers = pool_sizes().last().copied().unwrap_or(2);

    let mut specs = vec![PartitionSpec::Range {
        shards: workers.max(2),
    }];
    for shards in [workers.max(2), 4 * workers.max(2)] {
        specs.push(PartitionSpec::Bfs { shards });
    }
    for spec in specs {
        for mode in [StatsMode::Full, StatsMode::Off] {
            let variant = format!(
                "{}{}w/{}",
                spec.strategy_name(),
                spec.shards(),
                mode_name(mode)
            );
            let mut engine = ContinuousDiffusion::new(&inst.g)
                .engine_message(spec)
                .with_stats_mode(mode);
            let mut loads = inst.init.clone();
            // Warm one round so the exchange plan exists and the comm
            // metadata (messages, values moved — the numbers a
            // distributed transport would pay) rides along in the JSON.
            engine.round(&mut loads);
            let metrics = engine.shard_metrics().expect("plan derived");
            let comm = engine.comm_metrics().expect("comm recorded");
            let mut m = Meta::new("message_round", variant.clone(), 1, spec.shards());
            m.edge_cut = Some(metrics.edge_cut);
            m.halo = Some(metrics.halo);
            m.messages = Some(comm.messages);
            m.values_sent = Some(comm.values_sent);
            m.owned_values_in = Some(comm.owned_values_in);
            m.owned_values_out = Some(comm.owned_values_out);
            meta.insert(format!("message_round/{variant}"), m);
            group.bench_function(variant, |b| {
                b.iter(|| black_box(engine.round(&mut loads).map(|s| s.phi_after)));
            });
        }
    }

    // Shard-resident rounds: the workers keep their owned loads across
    // rounds, so a steady-state round ships no owned values either way —
    // only halo batches cross the channels. The warmup runs the seed
    // round plus one steady round, so the recorded metadata is the
    // per-round transfer the timed iterations actually pay (zero owned
    // transfer on stats-off, delta-free rounds — the acceptance check).
    let mut specs = vec![PartitionSpec::Range {
        shards: workers.max(2),
    }];
    for shards in [workers.max(2), 4 * workers.max(2)] {
        specs.push(PartitionSpec::Bfs { shards });
    }
    for spec in specs {
        for mode in [StatsMode::Full, StatsMode::Off] {
            let variant = format!(
                "resident-{}{}w/{}",
                spec.strategy_name(),
                spec.shards(),
                mode_name(mode)
            );
            let mut engine = Engine::with_backend(
                ContinuousDiffusion::new(&inst.g),
                Backend::Message {
                    partition: spec,
                    resident: true,
                },
            )
            .with_stats_mode(mode);
            let loads = inst.init.clone();
            engine.resident_begin(&loads);
            engine.round_resident(); // seed round: ships owned slices once
            engine.round_resident(); // steady round: the shape being timed
            let metrics = engine.shard_metrics().expect("plan derived");
            let comm = engine.comm_metrics().expect("comm recorded");
            let mut m = Meta::new("message_round", variant.clone(), 1, spec.shards());
            m.edge_cut = Some(metrics.edge_cut);
            m.halo = Some(metrics.halo);
            m.messages = Some(comm.messages);
            m.values_sent = Some(comm.values_sent);
            m.owned_values_in = Some(comm.owned_values_in);
            m.owned_values_out = Some(comm.owned_values_out);
            m.delta_values = Some(comm.delta_values);
            m.collects = Some(comm.collects);
            if matches!(mode, StatsMode::Off) {
                // The tentpole invariant, asserted where the numbers are
                // made: a stats-off, delta-free resident round moves no
                // owned values at all.
                assert_eq!(comm.owned_values_in, 0, "{variant}: owned values sent");
                assert_eq!(comm.owned_values_out, 0, "{variant}: owned values returned");
                assert_eq!(comm.collects, 0, "{variant}: unexpected collect");
            }
            meta.insert(format!("message_round/{variant}"), m);
            group.bench_function(variant, |b| {
                b.iter(|| black_box(engine.round_resident().map(|s| s.phi_after)));
            });
            engine.resident_end();
        }
    }
    group.finish();
}

/// The process-backend round cost: one `Engine::round` with each shard a
/// real OS process and every byte crossing a `dlb-wire/1` Unix socket.
/// The gap to `message_round` on the same partition is the price of true
/// process isolation — serialization, syscalls and scheduler handoffs in
/// place of in-process channels. Each record carries the framed
/// `wire_bytes_out/in` the coordinator actually moved in the measured
/// round, so the trajectory tracks wire volume alongside per-round time.
fn process_rounds(c: &mut Criterion, inst: &Instance, meta: &mut HashMap<String, Meta>) {
    let mut group = c.benchmark_group("process_round");
    // Fixed shard counts (not CPU-derived): a process fleet is priced by
    // its wire traffic, and fixed fleets keep the trajectory comparable
    // across machines. Two processes bound the protocol floor; eight is
    // the scenario default (`--backend process`).
    for spec in [
        PartitionSpec::Range { shards: 2 },
        PartitionSpec::Bfs { shards: 8 },
    ] {
        for mode in [StatsMode::Full, StatsMode::Off] {
            let variant = format!(
                "{}{}p/{}",
                spec.strategy_name(),
                spec.shards(),
                mode_name(mode)
            );
            let mut engine = Engine::with_backend(
                ContinuousDiffusion::new(&inst.g),
                Backend::Process {
                    partition: spec,
                    transport: dlb_core::Transport::Unix,
                },
            )
            .with_stats_mode(mode);
            let mut loads = inst.init.clone();
            // Warm two rounds: the first spawns the fleet and broadcasts
            // the plan frame (graph + divisors — a one-time cost), the
            // second is the steady shape being timed, so the per-round
            // wire metadata in the JSON excludes the plan broadcast.
            engine.round(&mut loads);
            engine.round(&mut loads);
            let metrics = engine.shard_metrics().expect("plan derived");
            let comm = engine.comm_metrics().expect("comm recorded");
            let mut m = Meta::new("process_round", variant.clone(), 1, spec.shards());
            m.edge_cut = Some(metrics.edge_cut);
            m.halo = Some(metrics.halo);
            m.messages = Some(comm.messages);
            m.values_sent = Some(comm.values_sent);
            m.wire_bytes_out = Some(comm.wire_bytes_out);
            m.wire_bytes_in = Some(comm.wire_bytes_in);
            meta.insert(format!("process_round/{variant}"), m);
            group.bench_function(variant, |b| {
                b.iter(|| black_box(engine.round(&mut loads).map(|s| s.phi_after)));
            });
        }
    }
    group.finish();
}

/// The fault-tolerance overhead check: one `Engine::round` (stats off) on
/// the sharded and message backends with no [`FaultPlan`] installed
/// (`absent` — the unsupervised fast path) vs. a plan armed whose single
/// event sits at a round the run never reaches (`armed_idle` —
/// supervision active, nothing ever fires). `absent` must hold the
/// prior trajectory's medians (the robustness acceptance: an engine
/// without a plan pays ≤ 1% for the feature existing); the gap to
/// `armed_idle` quantifies what explicitly arming supervision costs.
fn fault_overhead(c: &mut Criterion, inst: &Instance, meta: &mut HashMap<String, Meta>) {
    let threads = pool_sizes().last().copied().unwrap_or(2);
    let shards = threads.max(2);
    let partition = PartitionSpec::Range { shards };
    let idle_plan = FaultPlan::new().event(u64::MAX, 0, FaultKind::Panic);
    let mut group = c.benchmark_group("fault_overhead");
    for (backend_name, backend, workers) in [
        ("sharded", Backend::Sharded { partition, threads }, threads),
        (
            "message",
            Backend::Message {
                partition,
                resident: false,
            },
            shards,
        ),
    ] {
        for (arm, plan) in [("absent", None), ("armed_idle", Some(idle_plan.clone()))] {
            let variant = format!("{backend_name}/{arm}");
            meta.insert(
                format!("fault_overhead/{variant}"),
                Meta::new("fault_overhead", variant.clone(), 1, workers),
            );
            let mut engine = Engine::with_backend(ContinuousDiffusion::new(&inst.g), backend)
                .with_stats_mode(StatsMode::Off);
            engine.set_faults(plan);
            let mut loads = inst.init.clone();
            group.bench_function(variant, |b| {
                b.iter(|| {
                    engine.round(&mut loads);
                    black_box(loads[0])
                });
            });
        }
    }
    group.finish();
}

/// The telemetry overhead check: one `Engine::round` (stats off) with the
/// recorder `off` (the default `Telemetry::Off` no-op branch — must stay
/// within measurement noise of the pre-telemetry trajectory) vs. `armed`
/// (preallocated ring buffers capturing every per-phase span). The
/// acceptance bound is armed ≤ 5% over off on the 1M-node torus: recording
/// is a monotonic clock read plus a ring push per phase, amortized over a
/// millisecond-scale round. Serial records engine-lane spans only; the
/// message backend adds per-shard lanes (the worst recording density).
fn telemetry_overhead(c: &mut Criterion, inst: &Instance, meta: &mut HashMap<String, Meta>) {
    let threads = pool_sizes().last().copied().unwrap_or(2);
    let shards = threads.max(2);
    let partition = PartitionSpec::Range { shards };
    let mut group = c.benchmark_group("telemetry_overhead");
    for (backend_name, backend, workers) in [
        ("serial", Backend::Serial, 1),
        (
            "message",
            Backend::Message {
                partition,
                resident: false,
            },
            shards,
        ),
    ] {
        for arm in ["off", "armed"] {
            let variant = format!("{backend_name}/{arm}");
            meta.insert(
                format!("telemetry_overhead/{variant}"),
                Meta::new("telemetry_overhead", variant.clone(), 1, workers),
            );
            let tel = match arm {
                "armed" => Telemetry::armed(shards, dlb_core::telemetry::DEFAULT_CAPACITY),
                _ => Telemetry::Off,
            };
            let mut engine = Engine::with_backend(ContinuousDiffusion::new(&inst.g), backend)
                .with_stats_mode(StatsMode::Off)
                .with_telemetry(tel);
            let mut loads = inst.init.clone();
            group.bench_function(variant, |b| {
                b.iter(|| {
                    engine.round(&mut loads);
                    black_box(loads[0])
                });
            });
        }
    }
    group.finish();
}

/// The kernel-dispatch comparison: serial rounds with statistics off, so
/// the measured time is the gather alone, per [`KernelKind`] and per
/// degree structure. Instances are sized below the main torus — the
/// group's job is relative flavour cost on each structure, not absolute
/// scale.
fn kernel_gather(c: &mut Criterion, quick: bool, meta: &mut HashMap<String, Meta>) {
    let side = if quick { 64 } else { 512 };
    let dim = if quick { 12 } else { 18 };
    let graphs: [(&'static str, Graph); 3] = [
        // Degree 4 everywhere: one run, the unrolled d=4 fast path.
        ("torus", topology::torus2d(side, side)),
        // Regular at a degree with a lane remainder (no unrolled match).
        ("hypercube", topology::hypercube(dim)),
        // Degrees 1/2/3 in short alternating runs: the irregular tail —
        // the schedule degenerates to per-run dispatch with tiny runs.
        ("irregular", topology::binary_tree(side * side)),
    ];
    let mut group = c.benchmark_group("kernel_gather");
    for (name, g) in &graphs {
        let init: Vec<f64> = (0..g.n()).map(|i| ((i * 131 + 17) % 4099) as f64).collect();
        for kind in KernelKind::ALL {
            let variant = format!("{name}/{}", kind.name());
            let mut m = Meta::new("kernel_gather", variant.clone(), 1, 1);
            m.topology = Some(name);
            m.n = Some(g.n());
            meta.insert(format!("kernel_gather/{variant}"), m);
            group.bench_function(variant, |b| {
                let mut engine = ContinuousDiffusion::new(g)
                    .engine()
                    .with_kernel(kind)
                    .with_stats_mode(StatsMode::Off);
                let mut loads = init.clone();
                b.iter(|| {
                    engine.round(&mut loads);
                    black_box(loads[0])
                });
            });
        }
    }
    group.finish();
}

/// The thread-scaling protocol: every backend at every worker count from
/// 1 to the machine's available threads, stats off, on the shared torus
/// instance. `main` joins the records with `speedup_vs_serial` —
/// serial median over variant median — after the run.
fn thread_scaling(c: &mut Criterion, inst: &Instance, meta: &mut HashMap<String, Meta>) {
    let avail = recommended_threads().max(2);
    let mut group = c.benchmark_group("thread_scaling");
    let mut variants: Vec<(String, usize, Backend)> =
        vec![("serial/1t".to_string(), 1, Backend::Serial)];
    for t in 1..=avail {
        variants.push((format!("pool/{t}t"), t, Backend::Pool { threads: t }));
        variants.push((
            format!("sharded/{t}t"),
            t,
            Backend::Sharded {
                partition: PartitionSpec::Range { shards: t.max(2) },
                threads: t,
            },
        ));
        variants.push((
            format!("message/{t}t"),
            t,
            Backend::Message {
                partition: PartitionSpec::Range { shards: t.max(2) },
                resident: false,
            },
        ));
    }
    for (variant, threads, backend) in variants {
        meta.insert(
            format!("thread_scaling/{variant}"),
            Meta::new("thread_scaling", variant.clone(), 1, threads),
        );
        let mut engine = Engine::with_backend(ContinuousDiffusion::new(&inst.g), backend)
            .with_stats_mode(StatsMode::Off);
        let mut loads = inst.init.clone();
        group.bench_function(variant, |b| {
            b.iter(|| {
                engine.round(&mut loads);
                black_box(loads[0])
            });
        });
    }
    group.finish();
}

fn convergence_runs(
    c: &mut Criterion,
    inst: &Instance,
    rounds: usize,
    meta: &mut HashMap<String, Meta>,
) {
    let modes = [
        StatsMode::Full,
        StatsMode::PhiOnly,
        StatsMode::EveryK(10),
        StatsMode::Off,
    ];
    let mut group = c.benchmark_group("convergence_run");

    let mut variants: Vec<(String, usize, StatsMode)> = modes
        .into_iter()
        .map(|m| (format!("serial/{}", mode_name(m)), 1usize, m))
        .collect();
    if let Some(&threads) = pool_sizes().last() {
        for mode in [StatsMode::Full, StatsMode::Off] {
            variants.push((format!("pool{threads}/{}", mode_name(mode)), threads, mode));
        }
    }

    for (variant, threads, mode) in variants {
        meta.insert(
            format!("convergence_run/{variant}"),
            Meta::new("convergence_run", variant.clone(), rounds, threads),
        );
        // Protocol (divisor tables), engine and pool are built once —
        // only the run itself is timed. The per-iteration `loads` reset
        // is a plain copy shared by every variant. EveryK's cadence keeps
        // rolling across iterations (rounds_run persists), which averages
        // to the same per-round work.
        let mut engine = if threads == 1 {
            ContinuousDiffusion::new(&inst.g).engine()
        } else {
            ContinuousDiffusion::new(&inst.g).engine_parallel(threads)
        }
        .with_stats_mode(mode);
        let mut loads = inst.init.clone();
        group.bench_function(variant, |b| {
            b.iter(|| {
                loads.copy_from_slice(&inst.init);
                // Unreachable target: the driver executes exactly `rounds`
                // rounds, convergence checks (and their on-demand Φ
                // fallback) included.
                black_box(run_continuous(
                    &mut engine,
                    &mut loads,
                    f64::NEG_INFINITY,
                    rounds,
                    false,
                ))
            });
        });
    }
    group.finish();
}

fn scenario_runs(
    c: &mut Criterion,
    inst: &Instance,
    rounds: usize,
    meta: &mut HashMap<String, Meta>,
) {
    use dlb_workloads::{run_driven, Arrivals, Compose, Drain, StopSpec, Workload};

    let stop = StopSpec::Rounds { rounds };
    let mut group = c.benchmark_group("scenario_run");
    // (variant, stats mode, with workload?)
    let variants: [(&str, StatsMode, bool); 3] = [
        ("serial/no-workload", StatsMode::Full, false),
        ("serial/bursty-drain", StatsMode::Full, true),
        ("serial/bursty-drain-off", StatsMode::Off, true),
    ];
    for (variant, mode, with_workload) in variants {
        meta.insert(
            format!("scenario_run/{variant}"),
            Meta::new("scenario_run", variant.to_string(), rounds, 1),
        );
        let mut engine = ContinuousDiffusion::new(&inst.g)
            .engine()
            .with_stats_mode(mode);
        // Per-node-scaled rates so quick and full instances stress the
        // same regime. Workload state (carries) rolls across iterations;
        // the per-round work is identical.
        let n = inst.g.n() as f64;
        let mut workload: Compose<f64> = Compose::new(vec![
            Box::new(Arrivals::bursty(2.0 * n, 0.0, 10, 10)),
            Box::new(Drain::proportional(0.01)),
        ]);
        let mut loads = inst.init.clone();
        group.bench_function(variant, |b| {
            b.iter(|| {
                loads.copy_from_slice(&inst.init);
                let w = with_workload.then_some(&mut workload as &mut dyn Workload<f64>);
                black_box(run_driven(&mut engine, &mut loads, w, &stop, "bench"))
            });
        });
    }
    group.finish();
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let quick = matches!(std::env::var("DLB_BENCH_QUICK"), Ok(v) if !v.is_empty() && v != "0");
    let side = if quick { 100 } else { 1000 };
    let conv_rounds = if quick { 10 } else { 25 };

    let g = topology::torus2d(side, side);
    let n = g.n();
    let init: Vec<f64> = (0..n).map(|i| ((i * 131 + 17) % 4099) as f64).collect();
    let inst = Instance { g, init, side };

    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(if quick { 100 } else { 500 }))
        .measurement_time(Duration::from_millis(if quick { 400 } else { 2500 }));

    let mut meta: HashMap<String, Meta> = HashMap::new();
    gather_kernels(&mut c, &inst, &mut meta);
    kernel_gather(&mut c, quick, &mut meta);
    engine_rounds(&mut c, &inst, &mut meta);
    sharded_rounds(&mut c, &inst, &mut meta);
    message_rounds(&mut c, &inst, &mut meta);
    process_rounds(&mut c, &inst, &mut meta);
    fault_overhead(&mut c, &inst, &mut meta);
    telemetry_overhead(&mut c, &inst, &mut meta);
    thread_scaling(&mut c, &inst, &mut meta);
    convergence_runs(&mut c, &inst, conv_rounds, &mut meta);
    scenario_runs(&mut c, &inst, conv_rounds, &mut meta);

    if test_mode {
        // `cargo test --benches` smoke-runs one iteration of everything;
        // don't overwrite the committed trajectory with junk timings.
        return;
    }

    let mut records: Vec<PerfRecord> = take_reports()
        .into_iter()
        .filter_map(|r| {
            let m = meta.get(&r.id)?;
            let per_round = m.rounds_per_iter as f64;
            Some(PerfRecord {
                id: r.id.clone(),
                group: m.group.to_string(),
                variant: m.variant.clone(),
                topology: m.topology.unwrap_or("torus2d").to_string(),
                n: m.n.unwrap_or(inst.side * inst.side),
                threads: m.threads,
                rounds_per_iter: m.rounds_per_iter,
                median_ns_per_round: r.median_ns / per_round,
                min_ns_per_round: r.min_ns / per_round,
                samples: r.samples,
                edge_cut: m.edge_cut,
                halo: m.halo,
                messages: m.messages,
                values_sent: m.values_sent,
                owned_values_in: m.owned_values_in,
                owned_values_out: m.owned_values_out,
                delta_values: m.delta_values,
                collects: m.collects,
                wire_bytes_out: m.wire_bytes_out,
                wire_bytes_in: m.wire_bytes_in,
                speedup_vs_serial: None,
            })
        })
        .collect();
    // Join the scaling protocol's speedups: serial median over variant
    // median, from the same run.
    let serial_median = records
        .iter()
        .find(|r| r.group == "thread_scaling" && r.variant == "serial/1t")
        .map(|r| r.median_ns_per_round);
    if let Some(serial_median) = serial_median {
        for r in &mut records {
            if r.group == "thread_scaling" && r.median_ns_per_round > 0.0 {
                r.speedup_vs_serial = Some(serial_median / r.median_ns_per_round);
            }
        }
    }
    assert!(
        !records.is_empty(),
        "bench produced no records (filter excluded everything?)"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    perf_json::write(path, "engine", quick, recommended_threads(), &records)
        .expect("write BENCH_engine.json");
    println!("wrote {} records to {path}", records.len());
}
