//! Baseline per-round costs (experiment E12): Algorithm 1 vs dimension
//! exchange [12] vs FOS/SOS [15] vs the sequential comparator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_baselines::{
    FirstOrderContinuous, MatchingExchangeContinuous, MatchingKind, SecondOrderContinuous,
    SequentialComparator,
};
use dlb_bench::{bench_graphs, spike_continuous};
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::seq::AdaptiveOrder;
use std::hint::black_box;
use std::time::Duration;

fn baselines(c: &mut Criterion) {
    let (_, g) = bench_graphs().remove(1); // torus 32×32
    let n = g.n();
    let mut group = c.benchmark_group("baseline_round_torus2d");

    group.bench_function(BenchmarkId::new("round", "alg1"), |b| {
        let mut exec = ContinuousDiffusion::new(&g).engine();
        let mut loads = spike_continuous(n);
        b.iter(|| black_box(exec.round(&mut loads)));
    });
    group.bench_function(BenchmarkId::new("round", "gm94"), |b| {
        let mut exec = MatchingExchangeContinuous::new(&g, MatchingKind::Proposal, 3).engine();
        let mut loads = spike_continuous(n);
        b.iter(|| black_box(exec.round(&mut loads)));
    });
    group.bench_function(BenchmarkId::new("round", "gm94_greedy"), |b| {
        let mut exec = MatchingExchangeContinuous::new(&g, MatchingKind::GreedyMaximal, 3).engine();
        let mut loads = spike_continuous(n);
        b.iter(|| black_box(exec.round(&mut loads)));
    });
    group.bench_function(BenchmarkId::new("round", "fos"), |b| {
        let mut exec = FirstOrderContinuous::new(&g).engine();
        let mut loads = spike_continuous(n);
        b.iter(|| black_box(exec.round(&mut loads)));
    });
    group.bench_function(BenchmarkId::new("round", "sos"), |b| {
        let mut exec = SecondOrderContinuous::with_beta(&g, 1.8).engine();
        let mut loads = spike_continuous(n);
        b.iter(|| black_box(exec.round(&mut loads)));
    });
    group.bench_function(BenchmarkId::new("round", "sequential"), |b| {
        let mut exec = SequentialComparator::new(&g, AdaptiveOrder::EdgeIndex, 3).engine();
        let mut loads = spike_continuous(n);
        b.iter(|| black_box(exec.round(&mut loads)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = baselines
}
criterion_main!(benches);
