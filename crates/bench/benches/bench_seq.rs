//! Cost of the sequentialization machinery (experiments E2/E3): the
//! certified sequentialized replay vs the plain concurrent round, and the
//! adaptive sequential comparator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_bench::bench_graphs;
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::seq::{adaptive_sequential_round, sequentialized_round, AdaptiveOrder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn loads_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37 + 11) % 1009) as f64).collect()
}

fn seq_machinery(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequentialization");
    for (name, g) in bench_graphs() {
        group.bench_with_input(BenchmarkId::new("concurrent_round", name), &g, |b, g| {
            let mut exec = ContinuousDiffusion::new(g).engine();
            let mut loads = loads_for(g.n());
            b.iter(|| black_box(exec.round(&mut loads)));
        });
        group.bench_with_input(
            BenchmarkId::new("sequentialized_replay", name),
            &g,
            |b, g| {
                let mut loads = loads_for(g.n());
                b.iter(|| black_box(sequentialized_round(g, &mut loads)));
            },
        );
        group.bench_with_input(BenchmarkId::new("adaptive_sequential", name), &g, |b, g| {
            let mut loads = loads_for(g.n());
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                black_box(adaptive_sequential_round(
                    g,
                    &mut loads,
                    AdaptiveOrder::RoundStartWeight,
                    &mut rng,
                ))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = seq_machinery
}
criterion_main!(benches);
