//! Per-round cost of Algorithm 1 (continuous + discrete) across the
//! standard topologies — the inner loop every convergence experiment pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_bench::{bench_graphs, spike_continuous, spike_discrete};
use dlb_core::continuous::{ContinuousDiffusion, GeneralizedDiffusion};
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::heterogeneous::HeterogeneousDiffusion;
use std::hint::black_box;
use std::time::Duration;

fn rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1_round");
    for (name, g) in bench_graphs() {
        group.bench_with_input(BenchmarkId::new("continuous", name), &g, |b, g| {
            let mut exec = ContinuousDiffusion::new(g).engine();
            let mut loads = spike_continuous(g.n());
            b.iter(|| black_box(exec.round(&mut loads)));
        });
        group.bench_with_input(BenchmarkId::new("discrete", name), &g, |b, g| {
            let mut exec = DiscreteDiffusion::new(g).engine();
            let mut loads = spike_discrete(g.n());
            b.iter(|| black_box(exec.round(&mut loads)));
        });
        group.bench_with_input(BenchmarkId::new("heterogeneous", name), &g, |b, g| {
            let caps: Vec<f64> = (0..g.n())
                .map(|i| if i % 8 == 0 { 8.0 } else { 1.0 })
                .collect();
            let mut exec = HeterogeneousDiffusion::new(g, caps).engine();
            let mut loads = spike_continuous(g.n());
            b.iter(|| black_box(exec.round(&mut loads)));
        });
        group.bench_with_input(BenchmarkId::new("generalized_k8", name), &g, |b, g| {
            let mut exec = GeneralizedDiffusion::new(g, 8.0).engine();
            let mut loads = spike_continuous(g.n());
            b.iter(|| black_box(exec.round(&mut loads)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = rounds
}
criterion_main!(benches);
