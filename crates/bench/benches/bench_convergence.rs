//! Full convergence runs — the benchmark form of experiments E1/E4:
//! rounds-to-ε on each topology (continuous) and rounds-to-plateau
//! (discrete), measured as wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_bench::{bench_graphs, spike_continuous, spike_discrete, BENCH_SEED};
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::runner::{rounds_to_epsilon, run_discrete};
use dlb_core::{bounds, potential};
use std::hint::black_box;
use std::time::Duration;

fn convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence");
    for (name, g) in bench_graphs() {
        // Skip extremely slow mixers in the default bench run.
        if name == "cycle" {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("to_eps_1e-4", name), &g, |b, g| {
            b.iter(|| {
                let mut loads = spike_continuous(g.n());
                let mut exec = ContinuousDiffusion::new(g).engine();
                black_box(rounds_to_epsilon(&mut exec, &mut loads, 1e-4, 1_000_000))
            });
        });
        group.bench_with_input(BenchmarkId::new("to_theorem6_plateau", name), &g, |b, g| {
            let lambda2 = dlb_analysis::experiments::lambda2_of(
                match name {
                    "cycle" => dlb_graphs::topology::Topology::Cycle,
                    "torus2d" => dlb_graphs::topology::Topology::Torus2d,
                    "hypercube" => dlb_graphs::topology::Topology::Hypercube,
                    _ => dlb_graphs::topology::Topology::RandomRegular8,
                },
                g,
            );
            let target = bounds::theorem6_threshold_hat(g.max_degree(), lambda2, g.n());
            b.iter(|| {
                let mut loads = spike_discrete(g.n());
                let mut exec = DiscreteDiffusion::new(g).engine();
                black_box(run_discrete(
                    &mut exec, &mut loads, target, 1_000_000, false,
                ))
            });
        });
    }
    // One spot-check that the bench fixture actually converges (paranoia
    // against silently benchmarking a non-terminating loop).
    let (name, g) = &bench_graphs()[2];
    assert_eq!(*name, "hypercube");
    let mut loads = spike_continuous(g.n());
    let mut exec = ContinuousDiffusion::new(g).engine();
    let out = rounds_to_epsilon(&mut exec, &mut loads, 1e-4, 1_000_000);
    assert!(out.converged && potential::phi(&loads) <= 1e-4 * 102_400.0_f64.powi(2));
    let _ = BENCH_SEED;
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    targets = convergence
}
criterion_main!(benches);
