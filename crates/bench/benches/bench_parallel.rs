//! Parallel-executor scaling (experiment E14): the same round at 1–16
//! persistent-pool worker threads against the serial executor, on a large
//! torus. Cap the sweep with `DLB_THREADS` for stable numbers on shared
//! machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_graphs::topology;
use std::hint::black_box;
use std::time::Duration;

fn parallel(c: &mut Criterion) {
    let g = topology::torus2d(192, 192); // n = 36864
    let n = g.n();
    let loads0: Vec<f64> = (0..n).map(|i| ((i * 131 + 17) % 4099) as f64).collect();
    let mut group = c.benchmark_group("parallel_round_torus192");

    group.bench_function("serial", |b| {
        let mut exec = ContinuousDiffusion::new(&g).engine();
        let mut loads = loads0.clone();
        b.iter(|| black_box(exec.round(&mut loads)));
    });
    let avail = dlb_core::engine::recommended_threads();
    for threads in [1usize, 2, 4, 8, 16] {
        if threads > 2 * avail {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("pool", threads),
            &threads,
            |b, &threads| {
                let mut exec = ContinuousDiffusion::new(&g).engine_parallel(threads);
                let mut loads = loads0.clone();
                b.iter(|| black_box(exec.round(&mut loads)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    targets = parallel
}
criterion_main!(benches);
