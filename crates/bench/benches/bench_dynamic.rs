//! Dynamic-network round costs (experiments E6/E7): churn-model graph
//! generation plus a diffusion round on the evolving topology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_bench::spike_continuous;
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_dynamics::{GraphSequence, IidSubgraphSequence, MarkovChurnSequence, MatchingOnlySequence};
use dlb_graphs::topology;
use std::hint::black_box;
use std::time::Duration;

fn dynamic(c: &mut Criterion) {
    let ground = topology::torus2d(32, 32);
    let mut group = c.benchmark_group("dynamic_round");

    let cases: Vec<(&str, Box<dyn GraphSequence>)> = vec![
        (
            "iid_p0.5",
            Box::new(IidSubgraphSequence::new(ground.clone(), 0.5, 3)),
        ),
        (
            "markov",
            Box::new(MarkovChurnSequence::new(ground.clone(), 0.2, 0.4, 3)),
        ),
        (
            "matching_only",
            Box::new(MatchingOnlySequence::new(ground.clone(), 3)),
        ),
    ];
    for (name, mut seq) in cases {
        group.bench_function(BenchmarkId::new("subgraph_plus_round", name), |b| {
            let mut loads = spike_continuous(ground.n());
            b.iter(|| {
                let g = seq.next_graph();
                let stats = ContinuousDiffusion::new(&g)
                    .engine()
                    .round(&mut loads)
                    .expect("full stats");
                black_box(stats)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    targets = dynamic
}
criterion_main!(benches);
