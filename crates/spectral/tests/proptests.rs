//! Property-based tests for the spectral toolkit.

use dlb_graphs::{topology, traversal, Graph};
use dlb_spectral::diffusion::{diffusion_matrix_with, fos_matrix, gamma};
use dlb_spectral::{eigen, lanczos, SymMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a small random graph (possibly disconnected).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..26, 0u64..1_000).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        topology::gnp(n, 0.25, &mut rng)
    })
}

/// Strategy: a random dense symmetric matrix.
fn arb_sym_matrix() -> impl Strategy<Value = SymMatrix> {
    (1usize..16, proptest::collection::vec(-10.0f64..10.0, 256))
        .prop_map(|(n, vals)| SymMatrix::from_fn(n, |i, j| vals[(i * 16 + j) % vals.len()]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eigen_trace_and_frobenius_invariants(a in arb_sym_matrix()) {
        let eig = eigen::symmetric_eigen(&a, true).expect("solve");
        let sum: f64 = eig.values.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-8 * (1.0 + a.trace().abs()));
        let sq: f64 = eig.values.iter().map(|v| v * v).sum();
        let fro = a.frobenius_norm();
        prop_assert!((sq.sqrt() - fro).abs() < 1e-7 * (1.0 + fro));
        // Residuals certify the eigenpairs.
        prop_assert!(eig.max_residual(&a) < 1e-7 * (1.0 + fro));
    }

    #[test]
    fn eigenvalues_sorted_ascending(a in arb_sym_matrix()) {
        let eig = eigen::symmetric_eigen(&a, false).expect("solve");
        for w in eig.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn laplacian_zero_multiplicity_counts_components(g in arb_graph()) {
        let spec = eigen::laplacian_spectrum(&g).expect("spectrum");
        let zero_mult = spec.iter().filter(|&&x| x.abs() < 1e-7).count();
        let (_, comps) = traversal::components(&g);
        prop_assert_eq!(zero_mult, comps, "spectrum {:?}", &spec[..spec.len().min(6)]);
    }

    #[test]
    fn laplacian_spectrum_within_gershgorin(g in arb_graph()) {
        let spec = eigen::laplacian_spectrum(&g).expect("spectrum");
        let bound = 2.0 * g.max_degree() as f64;
        for &l in &spec {
            prop_assert!(l >= -1e-8 && l <= bound + 1e-8);
        }
    }

    #[test]
    fn lanczos_agrees_with_dense(g in arb_graph()) {
        let dense = eigen::laplacian_lambda2(&g).expect("dense λ₂");
        let (lz, _) = lanczos::lanczos_lambda2(&g, lanczos::LanczosOptions::default());
        prop_assert!((dense - lz).abs() < 1e-5 * (1.0 + dense), "dense {dense} vs lanczos {lz}");
    }

    #[test]
    fn fos_matrix_doubly_stochastic(g in arb_graph()) {
        let m = fos_matrix(&g);
        for i in 0..m.n() {
            let row_sum: f64 = m.row(i).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-12);
            prop_assert!(m.row(i).iter().all(|&x| x >= -1e-15));
        }
    }

    #[test]
    fn gamma_below_one_iff_connected(g in arb_graph()) {
        prop_assume!(g.m() > 0);
        let gam = gamma(&fos_matrix(&g)).expect("γ");
        if traversal::is_connected(&g) {
            prop_assert!(gam < 1.0 - 1e-10, "connected graph with γ = {gam}");
        } else {
            prop_assert!((gam - 1.0).abs() < 1e-8, "disconnected graph with γ = {gam}");
        }
    }

    #[test]
    fn bfh_matrix_row_sums_and_diagonal(g in arb_graph()) {
        let m = diffusion_matrix_with(&g, |di, dj| 1.0 / (4.0 * di.max(dj) as f64));
        for i in 0..m.n() {
            let row_sum: f64 = m.row(i).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-12);
            // Algorithm 1's matrix is strongly diagonally dominant: m_ii >= 3/4.
            prop_assert!(m.get(i, i) >= 0.75 - 1e-12);
        }
    }
}
