//! Diffusion matrices for the first/second-order baseline schemes.
//!
//! Cybenko's first-order scheme (FOS, \[3\], \[15\]) writes a round as
//! `L^{t+1} = M · L^t` with `m_ij = α_ij` on edges and
//! `m_ii = 1 − Σ_k α_ik`; the convergence rate is governed by
//! `γ = max_{μ ≠ 1} |μ(M)|` (second-largest eigenvalue modulus). The
//! second-order scheme (SOS, \[15\]) accelerates with
//! `L^{t+1} = β·M·L^t + (1 − β)·L^{t-1}`, optimal at
//! `β = 2 / (1 + sqrt(1 − γ²))`.
//!
//! The BFH paper's own Algorithm 1 uses per-edge factors
//! `α_ij = 1/(4·max(d_i, d_j))`; its induced first-order matrix is also
//! assembled here so experiments can compare the algebraic view with the
//! potential-function view.

use crate::eigen::symmetric_eigen;
use crate::matrix::SymMatrix;
use crate::tridiag::EigenError;
use dlb_graphs::Graph;

/// First-order diffusion matrix with uniform factor `α = 1/(δ+1)`
/// (Cybenko's canonical choice — always nonnegative-diagonal and doubly
/// stochastic on any graph).
pub fn fos_matrix(g: &Graph) -> SymMatrix {
    let alpha = 1.0 / (g.max_degree() as f64 + 1.0);
    diffusion_matrix_with(g, |_, _| alpha)
}

/// Diffusion matrix induced by the BFH Algorithm-1 transfer rule
/// `α_ij = 1/(4·max(d_i, d_j))`.
pub fn bfh_matrix(g: &Graph) -> SymMatrix {
    diffusion_matrix_with(g, |di, dj| 1.0 / (4.0 * di.max(dj) as f64))
}

/// Generic symmetric diffusion matrix: `m_ij = alpha(d_i, d_j)` on edges,
/// diagonal `1 − Σ`.
///
/// # Panics
/// If any diagonal entry would be negative (the scheme would not be a
/// proper averaging and `γ ≤ 1` is no longer guaranteed).
pub fn diffusion_matrix_with<F>(g: &Graph, mut alpha: F) -> SymMatrix
where
    F: FnMut(u32, u32) -> f64,
{
    let n = g.n();
    let mut m = SymMatrix::zeros(n);
    let mut row_sum = vec![0.0f64; n];
    for &(u, v) in g.edges() {
        let a = alpha(g.degree(u), g.degree(v));
        assert!(a >= 0.0, "negative diffusion factor on edge ({u},{v})");
        m.set(u as usize, v as usize, a);
        row_sum[u as usize] += a;
        row_sum[v as usize] += a;
    }
    for (i, &s) in row_sum.iter().enumerate() {
        assert!(
            s <= 1.0 + 1e-12,
            "diffusion factors at node {i} sum to {s} > 1: not an averaging matrix"
        );
        m.set(i, i, 1.0 - s);
    }
    m
}

/// `γ`: the second-largest eigenvalue *modulus* of a stochastic symmetric
/// diffusion matrix, i.e. `max_{μᵢ ≠ μ_max} |μᵢ|` where `μ_max = 1` for a
/// connected graph.
pub fn gamma(m: &SymMatrix) -> Result<f64, EigenError> {
    let eig = symmetric_eigen(m, false)?;
    let vals = &eig.values;
    let n = vals.len();
    assert!(n >= 2, "γ undefined for a 1×1 matrix");
    // Largest eigenvalue is last (ascending order); γ is the max modulus of
    // the rest.
    let second_largest = vals[n - 2];
    let smallest = vals[0];
    Ok(second_largest.abs().max(smallest.abs()))
}

/// Optimal second-order-scheme parameter `β = 2 / (1 + sqrt(1 − γ²))`
/// (\[15\], Section on SOS).
pub fn sos_optimal_beta(gamma: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&gamma),
        "SOS needs 0 <= γ < 1 (got {gamma})"
    );
    2.0 / (1.0 + (1.0 - gamma * gamma).sqrt())
}

/// Rounds needed by FOS to shrink the ℓ₂ error by `ε` according to the
/// algebraic bound `‖e(t)‖ ≤ γᵗ·‖e(0)‖`: `t = ln(1/ε)/ln(1/γ)`.
pub fn fos_round_bound(gamma: f64, eps: f64) -> f64 {
    assert!(gamma > 0.0 && gamma < 1.0, "need 0 < γ < 1 (got {gamma})");
    assert!(eps > 0.0 && eps < 1.0);
    (1.0 / eps).ln() / (1.0 / gamma).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_graphs::topology;

    #[test]
    fn fos_matrix_rows_sum_to_one() {
        let g = topology::torus2d(3, 4);
        let m = fos_matrix(&g);
        for i in 0..m.n() {
            let s: f64 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn bfh_matrix_diagonal_dominant() {
        // α_ij = 1/(4 max(d_i,d_j)) gives m_ii >= 1 - d_i/(4 d_i) = 3/4.
        let g = topology::complete(10);
        let m = bfh_matrix(&g);
        for i in 0..m.n() {
            assert!(m.get(i, i) >= 0.75 - 1e-12);
        }
    }

    #[test]
    fn gamma_of_complete_graph_fos() {
        // K_n with α = 1/n: M = (1/n) J; eigenvalues 1 and 0^{n-1}: γ = 0.
        let g = topology::complete(6);
        let m = fos_matrix(&g);
        let gam = gamma(&m).unwrap();
        assert!(gam.abs() < 1e-9, "γ = {gam}");
    }

    #[test]
    fn gamma_of_cycle_fos_closed_form() {
        // C_n, α = 1/3: μ_k = 1 − (2/3)(1 − cos(2πk/n)).
        let n = 12;
        let g = topology::cycle(n);
        let m = fos_matrix(&g);
        let gam = gamma(&m).unwrap();
        let mut expect = 0.0f64;
        for k in 1..n {
            let mu = 1.0
                - (2.0 / 3.0) * (1.0 - (2.0 * std::f64::consts::PI * k as f64 / n as f64).cos());
            expect = expect.max(mu.abs());
        }
        assert!((gam - expect).abs() < 1e-9, "γ = {gam}, want {expect}");
    }

    #[test]
    fn gamma_strictly_less_than_one_on_connected() {
        for g in [
            topology::path(8),
            topology::hypercube(3),
            topology::petersen(),
        ] {
            let gam = gamma(&fos_matrix(&g)).unwrap();
            assert!(gam < 1.0 - 1e-9, "γ = {gam}");
        }
    }

    #[test]
    fn gamma_one_on_disconnected() {
        let g = dlb_graphs::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let gam = gamma(&fos_matrix(&g)).unwrap();
        assert!((gam - 1.0).abs() < 1e-9, "γ = {gam}");
    }

    #[test]
    fn sos_beta_range() {
        assert!((sos_optimal_beta(0.0) - 1.0).abs() < 1e-12);
        let b = sos_optimal_beta(0.9);
        assert!(b > 1.0 && b < 2.0, "β = {b}");
        // β increases with γ.
        assert!(sos_optimal_beta(0.99) > b);
    }

    #[test]
    fn fos_round_bound_monotone_in_eps() {
        let t1 = fos_round_bound(0.9, 1e-2);
        let t2 = fos_round_bound(0.9, 1e-4);
        assert!(t2 > t1);
        assert!((t2 - 2.0 * t1).abs() < 1e-9); // log-linear in 1/ε
    }

    #[test]
    #[should_panic(expected = "not an averaging matrix")]
    fn over_aggressive_alpha_rejected() {
        let g = topology::complete(8);
        // α = 1/2 on K_8: row sums 3.5 > 1.
        diffusion_matrix_with(&g, |_, _| 0.5);
    }
}
