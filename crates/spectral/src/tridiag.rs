//! Symmetric tridiagonal reduction and eigen-iteration.
//!
//! Classic EISPACK pair, reimplemented in safe Rust:
//!
//! * [`householder_tridiagonalize`] (`tred2`): reduces a real symmetric
//!   matrix to tridiagonal form `T = Qᵀ A Q` by Householder reflections,
//!   optionally accumulating `Q`;
//! * [`tridiagonal_ql`] (`tql2`): implicit-shift QL iteration computing all
//!   eigenvalues of a symmetric tridiagonal matrix, rotating the accumulated
//!   basis so its columns become the eigenvectors of `A`.
//!
//! Both are `O(n³)`; the experiments use them on instances up to a couple of
//! thousand nodes and the Lanczos path (`crate::lanczos`) beyond that. The
//! implementation is validated against closed-form spectra, random-matrix
//! invariants (trace, Frobenius norm, residuals) and the Lanczos solver.

/// Error from the QL iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EigenError {
    /// The QL sweep for some eigenvalue did not converge within the
    /// iteration budget (30 sweeps per eigenvalue, the classical limit).
    NoConvergence {
        /// Index of the eigenvalue whose sweep exceeded the budget.
        eigenvalue_index: usize,
    },
}

impl std::fmt::Display for EigenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigenError::NoConvergence { eigenvalue_index } => {
                write!(
                    f,
                    "QL iteration failed to converge for eigenvalue {eigenvalue_index}"
                )
            }
        }
    }
}

impl std::error::Error for EigenError {}

/// Householder reduction of the symmetric matrix stored row-major in `a`
/// (dimension `n`) to tridiagonal form.
///
/// On return `d` holds the diagonal, `e` the subdiagonal (`e[0] = 0`), and —
/// when `accumulate` is true — `a` holds the orthogonal matrix `Q` effecting
/// the similarity transform (needed to recover eigenvectors of the original
/// matrix). With `accumulate = false`, `a`'s contents are destroyed.
pub fn householder_tridiagonalize(
    a: &mut [f64],
    n: usize,
    d: &mut [f64],
    e: &mut [f64],
    accumulate: bool,
) {
    assert_eq!(a.len(), n * n, "matrix storage must be n*n");
    assert_eq!(d.len(), n);
    assert_eq!(e.len(), n);
    let idx = |i: usize, j: usize| i * n + j;

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0f64;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| a[idx(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = a[idx(i, l)];
            } else {
                for k in 0..=l {
                    a[idx(i, k)] /= scale;
                    h += a[idx(i, k)] * a[idx(i, k)];
                }
                let f = a[idx(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                a[idx(i, l)] = f - g;
                let mut f_acc = 0.0f64;
                for j in 0..=l {
                    if accumulate {
                        a[idx(j, i)] = a[idx(i, j)] / h;
                    }
                    let mut g_sum = 0.0f64;
                    for k in 0..=j {
                        g_sum += a[idx(j, k)] * a[idx(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g_sum += a[idx(k, j)] * a[idx(i, k)];
                    }
                    e[j] = g_sum / h;
                    f_acc += e[j] * a[idx(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = a[idx(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        a[idx(j, k)] -= f * e[k] + g * a[idx(i, k)];
                    }
                }
            }
        } else {
            e[i] = a[idx(i, l)];
        }
        d[i] = h;
    }
    if accumulate {
        d[0] = 0.0;
    }
    e[0] = 0.0;

    if accumulate {
        // Accumulate the transformation matrix in `a`.
        for i in 0..n {
            if i > 0 {
                let l = i; // columns 0..i
                if d[i] != 0.0 {
                    for j in 0..l {
                        let mut g = 0.0f64;
                        for k in 0..l {
                            g += a[idx(i, k)] * a[idx(k, j)];
                        }
                        for k in 0..l {
                            a[idx(k, j)] -= g * a[idx(k, i)];
                        }
                    }
                }
            }
            d[i] = a[idx(i, i)];
            a[idx(i, i)] = 1.0;
            if i > 0 {
                for j in 0..i {
                    a[idx(j, i)] = 0.0;
                    a[idx(i, j)] = 0.0;
                }
            }
        }
    } else {
        for i in 0..n {
            d[i] = a[idx(i, i)];
        }
    }
}

/// `sqrt(a² + b²)` without destructive overflow.
#[inline]
fn pythag(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix.
///
/// `d` holds the diagonal and `e` the subdiagonal in `e[1..n]` (as produced
/// by [`householder_tridiagonalize`]); on success `d` contains the
/// eigenvalues (unsorted). If `z` is `Some`, it must hold the accumulated
/// basis (row-major, dimension `n`), and its columns are rotated into the
/// eigenvectors; pass `None` for an eigenvalues-only solve (≈2× faster).
pub fn tridiagonal_ql(
    d: &mut [f64],
    e: &mut [f64],
    n: usize,
    mut z: Option<&mut [f64]>,
) -> Result<(), EigenError> {
    assert_eq!(d.len(), n);
    assert_eq!(e.len(), n);
    if let Some(zz) = z.as_ref() {
        assert_eq!(zz.len(), n * n, "basis storage must be n*n");
    }
    if n == 1 {
        return Ok(());
    }
    // Shift the subdiagonal down for the classic indexing.
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    // Global negligibility scale: comparing e[m] against the *local*
    // diagonal magnitudes stalls on rank-deficient matrices whose deflated
    // blocks have |d| ≈ |e| ≈ ulp(‖A‖); an absolute threshold of ε·‖A‖
    // gives the standard backward-stable guarantee instead. The scale is
    // taken over the whole tridiagonal up front (shifts keep the iterated
    // entries bounded by the same norm).
    let tst1 = (0..n)
        .map(|i| d[i].abs() + e[i].abs())
        .fold(f64::MIN_POSITIVE, f64::max);

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find a negligible subdiagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                if e[m].abs() <= f64::EPSILON * tst1 {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 30 {
                return Err(EigenError::NoConvergence {
                    eigenvalue_index: l,
                });
            }
            // Form the implicit Wilkinson-like shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = pythag(g, 1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = pythag(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow by deflating.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                if let Some(zz) = z.as_deref_mut() {
                    for k in 0..n {
                        f = zz[k * n + i + 1];
                        zz[k * n + i + 1] = s * zz[k * n + i] + c * f;
                        zz[k * n + i] = c * zz[k * n + i] - s * f;
                    }
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_dense(a: Vec<f64>, n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut a = a;
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        householder_tridiagonalize(&mut a, n, &mut d, &mut e, true);
        tridiagonal_ql(&mut d, &mut e, n, Some(&mut a)).unwrap();
        (d, a)
    }

    #[test]
    fn diag_matrix_eigenvalues() {
        let n = 4;
        let mut a = vec![0.0; 16];
        for (i, v) in [3.0, -1.0, 7.0, 0.5].iter().enumerate() {
            a[i * n + i] = *v;
        }
        let (mut d, _) = solve_dense(a, n);
        d.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let expected = [-1.0, 0.5, 3.0, 7.0];
        for (got, want) in d.iter().zip(expected) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn two_by_two_known() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let (mut d, _) = solve_dense(vec![2.0, 1.0, 1.0, 2.0], 2);
        d.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn one_by_one() {
        let (d, _) = solve_dense(vec![5.0], 1);
        assert_eq!(d[0], 5.0);
    }

    #[test]
    fn eigen_decomposition_reconstructs() {
        // A = Q diag(d) Q^T elementwise for a small random-ish symmetric A.
        let n = 6;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let v = ((i * 31 + j * 17 + 5) % 13) as f64 - 6.0;
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        let orig = a.clone();
        let (d, q) = solve_dense(a, n);
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..n {
                    sum += q[i * n + k] * d[k] * q[j * n + k];
                }
                assert!(
                    (sum - orig[i * n + j]).abs() < 1e-9,
                    "reconstruction mismatch at ({i},{j}): {sum} vs {}",
                    orig[i * n + j]
                );
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let n = 8;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let v = 1.0 / (1.0 + i as f64 + j as f64); // Hilbert-like
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        let (_, q) = solve_dense(a, n);
        for c1 in 0..n {
            for c2 in c1..n {
                let dot: f64 = (0..n).map(|r| q[r * n + c1] * q[r * n + c2]).sum();
                let want = if c1 == c2 { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-9, "columns {c1},{c2}: dot = {dot}");
            }
        }
    }

    #[test]
    fn trace_preserved() {
        let n = 10;
        let mut a = vec![0.0; n * n];
        let mut trace = 0.0;
        for i in 0..n {
            for j in i..n {
                let v = ((i + 2 * j) as f64).sin();
                a[i * n + j] = v;
                a[j * n + i] = v;
                if i == j {
                    trace += v;
                }
            }
        }
        let (d, _) = solve_dense(a, n);
        let sum: f64 = d.iter().sum();
        assert!((sum - trace).abs() < 1e-9, "trace {trace} vs eigsum {sum}");
    }

    #[test]
    fn rank_one_matrix_converges() {
        // Regression: J/n (rank 1, eigenvalues {1, 0^{n-1}}) used to stall
        // the QL scan for 60 <= n <= 64 because the deflated blocks have
        // |d| ≈ |e| ≈ ulp and the local negligibility test never fired.
        for n in [4usize, 48, 60, 63, 64, 65, 128] {
            let a = vec![1.0 / n as f64; n * n];
            let (mut d, _) = solve_dense(a, n);
            d.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert!((d[n - 1] - 1.0).abs() < 1e-10, "J/{n}: top {}", d[n - 1]);
            assert!(d[n - 2].abs() < 1e-10, "J/{n}: second {}", d[n - 2]);
        }
    }

    #[test]
    fn eigenvalues_only_matches_full_solve() {
        let n = 7;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let v = ((3 * i + j) % 5) as f64;
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        let (mut full, _) = solve_dense(a.clone(), n);
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        householder_tridiagonalize(&mut a, n, &mut d, &mut e, false);
        tridiagonal_ql(&mut d, &mut e, n, None).unwrap();
        full.sort_by(|x, y| x.partial_cmp(y).unwrap());
        d.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for (x, y) in full.iter().zip(&d) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }
}
