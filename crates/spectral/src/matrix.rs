//! Dense symmetric matrices and graph-matrix assembly.
//!
//! The dense path is used for exact spectra of the moderate instances the
//! experiments sweep (n ≲ 2000); larger instances go through the
//! matrix-free [`crate::lanczos`] path.

use dlb_graphs::Graph;
use std::fmt;

/// A dense real symmetric `n × n` matrix, row-major.
///
/// Only symmetric data is ever stored (assemblers guarantee it; `set`
/// mirrors); the eigensolvers rely on exact symmetry.
#[derive(Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl fmt::Debug for SymMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymMatrix(n = {})", self.n)
    }
}

impl SymMatrix {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        assert!(n >= 1, "matrix dimension must be >= 1");
        SymMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from `f(i, j)`; `f` is evaluated only for `i ≤ j` and
    /// mirrored, guaranteeing symmetry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = f(i, j);
                m.data[i * n + j] = v;
                m.data[j * n + i] = v;
            }
        }
        m
    }

    /// Dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Sets `(i, j)` and `(j, i)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Raw row-major storage (length `n²`).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage — used by the in-place eigensolver.
    #[inline]
    pub(crate) fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix-vector product `y = A·x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Trace `Σ aᵢᵢ` — equals the sum of eigenvalues, a solver sanity check.
    pub fn trace(&self) -> f64 {
        (0..self.n).map(|i| self.data[i * self.n + i]).sum()
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)` — equals `sqrt(Σ λᵢ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute asymmetry `max |aᵢⱼ − aⱼᵢ|` (0 by construction; kept
    /// as a diagnostic for hand-built matrices in tests).
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        worst
    }

    /// Graph Laplacian `L = D − A`.
    pub fn laplacian(g: &Graph) -> Self {
        let n = g.n();
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.data[i * n + i] = g.degree(i as u32) as f64;
        }
        for &(u, v) in g.edges() {
            let (u, v) = (u as usize, v as usize);
            m.data[u * n + v] = -1.0;
            m.data[v * n + u] = -1.0;
        }
        m
    }

    /// Adjacency matrix `A`.
    pub fn adjacency(g: &Graph) -> Self {
        let n = g.n();
        let mut m = Self::zeros(n);
        for &(u, v) in g.edges() {
            let (u, v) = (u as usize, v as usize);
            m.data[u * n + v] = 1.0;
            m.data[v * n + u] = 1.0;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_graphs::topology;

    #[test]
    fn identity_matvec() {
        let m = SymMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        m.matvec(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn from_fn_is_symmetric() {
        let m = SymMatrix::from_fn(5, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(m.asymmetry(), 0.0);
        assert_eq!(m.get(1, 4), m.get(4, 1));
    }

    #[test]
    fn laplacian_of_triangle() {
        let g = topology::complete(3);
        let l = SymMatrix::laplacian(&g);
        assert_eq!(l.get(0, 0), 2.0);
        assert_eq!(l.get(0, 1), -1.0);
        assert_eq!(l.trace(), 6.0); // trace = sum of degrees = 2m
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = topology::torus2d(3, 4);
        let l = SymMatrix::laplacian(&g);
        for i in 0..l.n() {
            let s: f64 = l.row(i).iter().sum();
            assert!(s.abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn laplacian_annihilates_constant_vector() {
        let g = topology::hypercube(3);
        let l = SymMatrix::laplacian(&g);
        let x = vec![1.0; 8];
        let mut y = vec![0.0; 8];
        l.matvec(&x, &mut y);
        assert!(y.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn adjacency_matches_edges() {
        let g = topology::path(4);
        let a = SymMatrix::adjacency(&g);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 2), 1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.trace(), 0.0);
    }

    #[test]
    fn quadratic_form_equals_edge_sum() {
        // x^T L x = sum over edges (x_u - x_v)^2 — the identity at the heart
        // of Lemma 3 / Theorem 4.
        let g = topology::petersen();
        let l = SymMatrix::laplacian(&g);
        let x: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let mut lx = vec![0.0; 10];
        l.matvec(&x, &mut lx);
        let quad: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
        let edge_sum: f64 = g
            .edges()
            .iter()
            .map(|&(u, v)| (x[u as usize] - x[v as usize]).powi(2))
            .sum();
        assert!((quad - edge_sum).abs() < 1e-10);
    }

    #[test]
    fn frobenius_norm_identity() {
        assert!((SymMatrix::identity(9).frobenius_norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension must be >= 1")]
    fn zero_dimension_rejected() {
        SymMatrix::zeros(0);
    }
}
