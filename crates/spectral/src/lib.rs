#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

//! # dlb-spectral
//!
//! Spectral toolkit for the Berenbrink–Friedetzky–Hu reproduction.
//!
//! Every convergence bound in the paper is parameterized by the
//! second-smallest eigenvalue `λ₂` of the graph Laplacian `L = D − A`
//! (Theorems 4, 6, 7, 8), and the baselines it compares against (\[15\]'s
//! first/second-order schemes) are parameterized by the second-largest
//! eigenvalue `γ` of a diffusion matrix `M`. The approved dependency set
//! contains no linear-algebra crate, so this crate implements the required
//! machinery from scratch:
//!
//! * [`matrix`] — dense symmetric matrices, Laplacian / diffusion-matrix
//!   assembly;
//! * [`tridiag`] — Householder tridiagonalization (`tred2`) and the
//!   implicit-shift QL iteration (`tql2`) for the full symmetric
//!   eigenproblem;
//! * [`eigen`] — high-level solvers: full spectra, `λ₂`, eigenvector
//!   residual diagnostics;
//! * [`lanczos`] — matrix-free Lanczos with full reorthogonalization and
//!   constant-vector deflation, for `λ₂` of large sparse Laplacians;
//! * [`closed_form`] — textbook spectra of the structured topologies, used
//!   to cross-validate the numerical solvers (experiment E13);
//! * [`diffusion`] — first-order-scheme matrices, `γ`, and the optimal
//!   second-order parameter `β`.

pub mod closed_form;
pub mod diffusion;
pub mod eigen;
pub mod lanczos;
pub mod matrix;
pub mod tridiag;

pub use eigen::{laplacian_lambda2, laplacian_spectrum, symmetric_eigen, Eigen};
pub use lanczos::{lanczos_lambda2, LanczosOptions, LaplacianOp, LinearOperator};
pub use matrix::SymMatrix;
