//! Closed-form Laplacian spectra of the structured topology families.
//!
//! These are textbook results (see e.g. Chung, *Spectral Graph Theory* \[4\]);
//! we use them both (a) as ground truth for validating the numerical
//! eigensolvers (experiment E13) and (b) to avoid an `O(n³)` solve when the
//! experiment harness instantiates a structured topology whose `λ₂` is
//! known exactly.

use std::f64::consts::PI;

/// `λ₂` of the path `P_n`: `2 − 2·cos(π/n)`.
pub fn lambda2_path(n: usize) -> f64 {
    assert!(n >= 2);
    2.0 - 2.0 * (PI / n as f64).cos()
}

/// `λ₂` of the cycle `C_n`: `2 − 2·cos(2π/n)`.
pub fn lambda2_cycle(n: usize) -> f64 {
    assert!(n >= 3);
    2.0 - 2.0 * (2.0 * PI / n as f64).cos()
}

/// `λ₂` of the complete graph `K_n`: `n`.
pub fn lambda2_complete(n: usize) -> f64 {
    assert!(n >= 2);
    n as f64
}

/// `λ₂` of the star `S_n`: `1`.
pub fn lambda2_star(n: usize) -> f64 {
    assert!(n >= 2);
    1.0
}

/// `λ₂` of the hypercube `Q_d`: `2` for every `d ≥ 1`.
pub fn lambda2_hypercube(dim: u32) -> f64 {
    assert!(dim >= 1);
    2.0
}

/// `λ₂` of the `rows × cols` torus: smallest nonzero of
/// `(2 − 2cos(2πi/rows)) + (2 − 2cos(2πj/cols))`.
pub fn lambda2_torus2d(rows: usize, cols: usize) -> f64 {
    assert!(rows >= 3 && cols >= 3);
    let big = rows.max(cols) as f64;
    2.0 - 2.0 * (2.0 * PI / big).cos()
}

/// `λ₂` of the `rows × cols` mesh (grid): smallest nonzero of
/// `(2 − 2cos(πi/rows)) + (2 − 2cos(πj/cols))`.
pub fn lambda2_grid2d(rows: usize, cols: usize) -> f64 {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let big = rows.max(cols) as f64;
    2.0 - 2.0 * (PI / big).cos()
}

/// `λ₂` of the complete bipartite graph `K_{a,b}`: `min(a, b)`.
pub fn lambda2_complete_bipartite(a: usize, b: usize) -> f64 {
    assert!(a >= 1 && b >= 1 && a + b >= 2);
    a.min(b) as f64
}

/// `λ₂` of the 3-D torus `a × b × c`: `2 − 2·cos(2π/max(a,b,c))` (the
/// Laplacian spectrum is the threefold sum of cycle spectra).
pub fn lambda2_torus3d(a: usize, b: usize, c: usize) -> f64 {
    assert!(a >= 3 && b >= 3 && c >= 3);
    let big = a.max(b).max(c) as f64;
    2.0 - 2.0 * (2.0 * PI / big).cos()
}

/// `λ₂` of the wheel `W_n` (hub + `(n−1)`-cycle): by the join formula
/// `spec(K₁ ∨ C_m) = {0, n} ∪ {λ_k(C_m) + 1}`, so
/// `λ₂ = 3 − 2·cos(2π/(n−1))` for `n ≥ 5` (and `min(n, ·)` in general).
pub fn lambda2_wheel(n: usize) -> f64 {
    assert!(n >= 4);
    let m = (n - 1) as f64;
    (3.0 - 2.0 * (2.0 * PI / m).cos()).min(n as f64)
}

/// Full Laplacian spectrum of the path `P_n`, ascending:
/// `λ_k = 2 − 2·cos(kπ/n)`, `k = 0..n`.
pub fn spectrum_path(n: usize) -> Vec<f64> {
    (0..n)
        .map(|k| 2.0 - 2.0 * (k as f64 * PI / n as f64).cos())
        .collect()
}

/// Full Laplacian spectrum of the cycle `C_n`, ascending.
pub fn spectrum_cycle(n: usize) -> Vec<f64> {
    let mut spec: Vec<f64> = (0..n)
        .map(|k| 2.0 - 2.0 * (2.0 * PI * k as f64 / n as f64).cos())
        .collect();
    spec.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    spec
}

/// Full Laplacian spectrum of `K_n`: `0`, then `n` with multiplicity `n−1`.
pub fn spectrum_complete(n: usize) -> Vec<f64> {
    let mut spec = vec![n as f64; n];
    spec[0] = 0.0;
    spec
}

/// Full Laplacian spectrum of the star `S_n`: `0`, `1` (×(n−2)), `n`.
pub fn spectrum_star(n: usize) -> Vec<f64> {
    assert!(n >= 2);
    let mut spec = vec![1.0; n];
    spec[0] = 0.0;
    spec[n - 1] = n as f64;
    spec
}

/// Full Laplacian spectrum of the hypercube `Q_d`: eigenvalue `2k` with
/// multiplicity `C(d, k)`, ascending.
pub fn spectrum_hypercube(dim: u32) -> Vec<f64> {
    let mut spec = Vec::with_capacity(1 << dim);
    for k in 0..=dim {
        let mult = binomial(dim as u64, k as u64);
        for _ in 0..mult {
            spec.push(2.0 * k as f64);
        }
    }
    spec
}

/// Full Laplacian spectrum of the `rows × cols` torus (sum of two cycle
/// spectra), ascending.
pub fn spectrum_torus2d(rows: usize, cols: usize) -> Vec<f64> {
    let mut spec = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        let a = 2.0 - 2.0 * (2.0 * PI * i as f64 / rows as f64).cos();
        for j in 0..cols {
            let b = 2.0 - 2.0 * (2.0 * PI * j as f64 / cols as f64).cos();
            spec.push(a + b);
        }
    }
    spec.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    spec
}

/// Full Laplacian spectrum of the `rows × cols` grid (sum of two path
/// spectra), ascending.
pub fn spectrum_grid2d(rows: usize, cols: usize) -> Vec<f64> {
    let mut spec = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        let a = 2.0 - 2.0 * (PI * i as f64 / rows as f64).cos();
        for j in 0..cols {
            let b = 2.0 - 2.0 * (PI * j as f64 / cols as f64).cos();
            spec.push(a + b);
        }
    }
    spec.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    spec
}

fn binomial(n: u64, k: u64) -> u64 {
    let k = k.min(n - k);
    let mut acc = 1u64;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::laplacian_spectrum;
    use dlb_graphs::topology;

    fn assert_spectra_match(numerical: &[f64], closed: &[f64], tol: f64, label: &str) {
        assert_eq!(numerical.len(), closed.len(), "{label}: length mismatch");
        for (k, (a, b)) in numerical.iter().zip(closed).enumerate() {
            assert!((a - b).abs() < tol, "{label}: eigenvalue {k}: {a} vs {b}");
        }
    }

    #[test]
    fn path_spectrum_matches_solver() {
        let n = 9;
        let num = laplacian_spectrum(&topology::path(n)).unwrap();
        assert_spectra_match(&num, &spectrum_path(n), 1e-8, "path");
    }

    #[test]
    fn cycle_spectrum_matches_solver() {
        let n = 11;
        let num = laplacian_spectrum(&topology::cycle(n)).unwrap();
        assert_spectra_match(&num, &spectrum_cycle(n), 1e-8, "cycle");
    }

    #[test]
    fn complete_spectrum_matches_solver() {
        let n = 8;
        let num = laplacian_spectrum(&topology::complete(n)).unwrap();
        assert_spectra_match(&num, &spectrum_complete(n), 1e-8, "complete");
    }

    #[test]
    fn star_spectrum_matches_solver() {
        let n = 10;
        let num = laplacian_spectrum(&topology::star(n)).unwrap();
        assert_spectra_match(&num, &spectrum_star(n), 1e-8, "star");
    }

    #[test]
    fn hypercube_spectrum_matches_solver() {
        let num = laplacian_spectrum(&topology::hypercube(4)).unwrap();
        assert_spectra_match(&num, &spectrum_hypercube(4), 1e-8, "hypercube");
    }

    #[test]
    fn torus_spectrum_matches_solver() {
        let num = laplacian_spectrum(&topology::torus2d(4, 5)).unwrap();
        assert_spectra_match(&num, &spectrum_torus2d(4, 5), 1e-8, "torus");
    }

    #[test]
    fn grid_spectrum_matches_solver() {
        let num = laplacian_spectrum(&topology::grid2d(3, 6)).unwrap();
        assert_spectra_match(&num, &spectrum_grid2d(3, 6), 1e-8, "grid");
    }

    #[test]
    fn lambda2_helpers_agree_with_spectra() {
        assert!((lambda2_path(9) - spectrum_path(9)[1]).abs() < 1e-12);
        assert!((lambda2_cycle(11) - spectrum_cycle(11)[1]).abs() < 1e-12);
        assert!((lambda2_complete(8) - spectrum_complete(8)[1]).abs() < 1e-12);
        assert!((lambda2_star(10) - spectrum_star(10)[1]).abs() < 1e-12);
        assert!((lambda2_hypercube(4) - spectrum_hypercube(4)[1]).abs() < 1e-12);
        assert!((lambda2_torus2d(4, 5) - spectrum_torus2d(4, 5)[1]).abs() < 1e-12);
        assert!((lambda2_grid2d(3, 6) - spectrum_grid2d(3, 6)[1]).abs() < 1e-12);
    }

    #[test]
    fn complete_bipartite_lambda2_matches_solver() {
        let num = crate::eigen::laplacian_lambda2(&topology::complete_bipartite(3, 5)).unwrap();
        assert!((num - lambda2_complete_bipartite(3, 5)).abs() < 1e-8);
    }

    #[test]
    fn torus3d_lambda2_matches_solver() {
        let num = crate::eigen::laplacian_lambda2(&topology::torus3d(3, 4, 5)).unwrap();
        assert!((num - lambda2_torus3d(3, 4, 5)).abs() < 1e-8, "{num}");
    }

    #[test]
    fn wheel_lambda2_matches_solver() {
        for n in [4usize, 5, 9, 16] {
            let num = crate::eigen::laplacian_lambda2(&topology::wheel(n)).unwrap();
            assert!(
                (num - lambda2_wheel(n)).abs() < 1e-8,
                "W_{n}: solver {num} vs closed form {}",
                lambda2_wheel(n)
            );
        }
    }

    #[test]
    fn lollipop_lambda2_is_tiny() {
        // No simple closed form; check the qualitative claim λ₂ = O(1/(k·p²)).
        let g = topology::lollipop(6, 8);
        let l2 = crate::eigen::laplacian_lambda2(&g).unwrap();
        assert!(l2 > 0.0 && l2 < 0.1, "λ₂(lollipop) = {l2}");
    }

    #[test]
    fn binomial_small_cases() {
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(10, 5), 252);
    }
}
