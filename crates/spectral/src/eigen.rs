//! High-level symmetric eigensolvers and Laplacian spectra.

use crate::matrix::SymMatrix;
use crate::tridiag::{householder_tridiagonalize, tridiagonal_ql, EigenError};
use dlb_graphs::Graph;

/// Result of a symmetric eigendecomposition: eigenvalues ascending, and —
/// when requested — the matching orthonormal eigenvectors.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues sorted ascending.
    pub values: Vec<f64>,
    /// Eigenvectors as rows (i.e. `vectors[k]` is the unit eigenvector for
    /// `values[k]`), or empty if not requested.
    pub vectors: Vec<Vec<f64>>,
}

impl Eigen {
    /// Maximum residual `‖A·v − λ·v‖₂` over all computed pairs; a direct
    /// certificate of solver quality (used by tests and experiment E13).
    pub fn max_residual(&self, a: &SymMatrix) -> f64 {
        let n = a.n();
        let mut worst = 0.0f64;
        let mut av = vec![0.0; n];
        for (lambda, v) in self.values.iter().zip(&self.vectors) {
            a.matvec(v, &mut av);
            let r: f64 = av
                .iter()
                .zip(v)
                .map(|(avi, vi)| (avi - lambda * vi).powi(2))
                .sum::<f64>()
                .sqrt();
            worst = worst.max(r);
        }
        worst
    }
}

/// Full eigendecomposition of a dense symmetric matrix.
///
/// `with_vectors = false` skips the basis accumulation/rotation (≈2×
/// faster), leaving `vectors` empty.
pub fn symmetric_eigen(a: &SymMatrix, with_vectors: bool) -> Result<Eigen, EigenError> {
    let n = a.n();
    let mut work = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    householder_tridiagonalize(work.as_mut_slice(), n, &mut d, &mut e, with_vectors);
    if with_vectors {
        tridiagonal_ql(&mut d, &mut e, n, Some(work.as_mut_slice()))?;
    } else {
        tridiagonal_ql(&mut d, &mut e, n, None)?;
    }
    // Sort eigenpairs ascending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let vectors = if with_vectors {
        let z = work.as_slice();
        order
            .iter()
            .map(|&col| (0..n).map(|row| z[row * n + col]).collect())
            .collect()
    } else {
        Vec::new()
    };
    Ok(Eigen { values, vectors })
}

/// Full Laplacian spectrum of `g`, ascending (`values[0] ≈ 0` always;
/// `values[1] = λ₂`).
pub fn laplacian_spectrum(g: &Graph) -> Result<Vec<f64>, EigenError> {
    let l = SymMatrix::laplacian(g);
    Ok(symmetric_eigen(&l, false)?.values)
}

/// Second-smallest Laplacian eigenvalue `λ₂` (the algebraic connectivity) —
/// the parameter every theorem in the paper depends on. Exact dense solve;
/// use [`crate::lanczos::lanczos_lambda2`] for large graphs.
pub fn laplacian_lambda2(g: &Graph) -> Result<f64, EigenError> {
    let spec = laplacian_spectrum(g)?;
    assert!(spec.len() >= 2, "λ₂ undefined for single-node graph");
    // Guard against tiny negative round-off on the zero eigenvalue.
    Ok(spec[1].max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_graphs::topology;
    use std::f64::consts::PI;

    #[test]
    fn laplacian_spectrum_starts_at_zero() {
        for g in [topology::path(7), topology::cycle(8), topology::complete(5)] {
            let spec = laplacian_spectrum(&g).unwrap();
            assert!(spec[0].abs() < 1e-9, "λ₁ = {}", spec[0]);
            for w in spec.windows(2) {
                assert!(w[0] <= w[1] + 1e-12, "spectrum not sorted");
            }
        }
    }

    #[test]
    fn lambda2_complete_graph() {
        let l2 = laplacian_lambda2(&topology::complete(9)).unwrap();
        assert!((l2 - 9.0).abs() < 1e-8, "λ₂(K₉) = {l2}");
    }

    #[test]
    fn lambda2_cycle_closed_form() {
        let n = 12;
        let l2 = laplacian_lambda2(&topology::cycle(n)).unwrap();
        let expect = 2.0 - 2.0 * (2.0 * PI / n as f64).cos();
        assert!((l2 - expect).abs() < 1e-9, "λ₂(C₁₂) = {l2}, want {expect}");
    }

    #[test]
    fn lambda2_path_closed_form() {
        let n = 10;
        let l2 = laplacian_lambda2(&topology::path(n)).unwrap();
        let expect = 2.0 - 2.0 * (PI / n as f64).cos();
        assert!((l2 - expect).abs() < 1e-9);
    }

    #[test]
    fn lambda2_hypercube_is_two() {
        let l2 = laplacian_lambda2(&topology::hypercube(4)).unwrap();
        assert!((l2 - 2.0).abs() < 1e-8, "λ₂(Q₄) = {l2}");
    }

    #[test]
    fn lambda2_star() {
        let l2 = laplacian_lambda2(&topology::star(15)).unwrap();
        assert!((l2 - 1.0).abs() < 1e-8);
    }

    #[test]
    fn lambda2_disconnected_is_zero() {
        let g = dlb_graphs::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let l2 = laplacian_lambda2(&g).unwrap();
        assert!(l2.abs() < 1e-9, "λ₂ of disconnected graph = {l2}");
    }

    #[test]
    fn petersen_full_spectrum() {
        // Laplacian spectrum of Petersen: 0, 2 (×5), 5 (×4).
        let spec = laplacian_spectrum(&topology::petersen()).unwrap();
        let expected = [0.0, 2.0, 2.0, 2.0, 2.0, 2.0, 5.0, 5.0, 5.0, 5.0];
        for (got, want) in spec.iter().zip(expected) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn eigenvector_residuals_small() {
        let g = topology::torus2d(3, 5);
        let l = SymMatrix::laplacian(&g);
        let eig = symmetric_eigen(&l, true).unwrap();
        assert!(eig.max_residual(&l) < 1e-8);
    }

    #[test]
    fn fiedler_vector_orthogonal_to_ones() {
        let g = topology::grid2d(3, 4);
        let l = SymMatrix::laplacian(&g);
        let eig = symmetric_eigen(&l, true).unwrap();
        let fiedler = &eig.vectors[1];
        let dot: f64 = fiedler.iter().sum();
        assert!(dot.abs() < 1e-8, "Fiedler vector not ⊥ 1: {dot}");
    }

    #[test]
    fn spectrum_sum_equals_trace() {
        let g = topology::de_bruijn(4);
        let l = SymMatrix::laplacian(&g);
        let spec = laplacian_spectrum(&g).unwrap();
        let sum: f64 = spec.iter().sum();
        assert!((sum - l.trace()).abs() < 1e-8);
    }
}
