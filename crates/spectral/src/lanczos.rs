//! Matrix-free Lanczos iteration for `λ₂` of large sparse Laplacians.
//!
//! The dense QL solver is `O(n³)`; experiment sweeps on `n ≥ 4096` instead
//! use Lanczos with full reorthogonalization on the spectrally shifted
//! operator `B = c·I − L` (with `c = 2δ ≥ λ_max(L)` by Gershgorin), after
//! deflating the known null vector `1/√n` of `L`. The largest Ritz value of
//! `B` restricted to `1⊥` is then `c − λ₂`.
//!
//! Full reorthogonalization costs `O(k²·n)` for `k` iterations — entirely
//! acceptable for the `k ≲ 300` this workload needs, and it sidesteps the
//! ghost-eigenvalue pathology of plain Lanczos.

use crate::tridiag::tridiagonal_ql;
use dlb_graphs::Graph;

/// A symmetric linear operator `y = A·x` given implicitly.
pub trait LinearOperator {
    /// Dimension of the operator.
    fn dim(&self) -> usize;
    /// Computes `y = A·x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// The graph Laplacian `L = D − A` as a matrix-free operator over the CSR
/// structure (no `O(n²)` storage).
pub struct LaplacianOp<'a> {
    g: &'a Graph,
}

impl<'a> LaplacianOp<'a> {
    /// Wraps a graph.
    pub fn new(g: &'a Graph) -> Self {
        LaplacianOp { g }
    }
}

impl LinearOperator for LaplacianOp<'_> {
    fn dim(&self) -> usize {
        self.g.n()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let n = self.g.n();
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        for v in 0..n as u32 {
            let neigh = self.g.neighbors(v);
            let mut acc = neigh.len() as f64 * x[v as usize];
            for &u in neigh {
                acc -= x[u as usize];
            }
            y[v as usize] = acc;
        }
    }
}

/// Options for [`lanczos_lambda2`].
#[derive(Debug, Clone, Copy)]
pub struct LanczosOptions {
    /// Maximum Krylov dimension (default 300).
    pub max_iter: usize,
    /// Relative convergence tolerance on the λ₂ estimate between
    /// consecutive iterations (default 1e-10).
    pub tol: f64,
    /// RNG seed for the random start vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_iter: 300,
            tol: 1e-10,
            seed: 0x1A2C205,
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// xorshift64* — a tiny deterministic generator for the start vector (keeps
/// this module independent of the `rand` version in use).
fn fill_random(v: &mut [f64], mut state: u64) {
    for x in v.iter_mut() {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let r = state.wrapping_mul(0x2545F4914F6CDD1D);
        *x = (r >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
}

/// Estimates `λ₂(L)` of the Laplacian of `g` by deflated Lanczos.
///
/// Returns the estimate together with the Krylov dimension used. Accuracy is
/// typically 10+ significant digits at the default tolerance; experiment E13
/// cross-validates against the dense solver and closed forms.
pub fn lanczos_lambda2(g: &Graph, opts: LanczosOptions) -> (f64, usize) {
    let op = LaplacianOp::new(g);
    let n = op.dim();
    assert!(n >= 2, "λ₂ undefined for single-node graph");
    let c = 2.0 * g.max_degree().max(1) as f64; // Gershgorin bound on λ_max(L)

    // Krylov basis (rows), coefficients of the Lanczos tridiagonal.
    let mut basis: Vec<Vec<f64>> = Vec::new();
    let mut alpha: Vec<f64> = Vec::new();
    let mut beta: Vec<f64> = Vec::new();

    let inv_sqrt_n = 1.0 / (n as f64).sqrt();
    let ones: Vec<f64> = vec![inv_sqrt_n; n];

    let mut v = vec![0.0; n];
    fill_random(&mut v, opts.seed | 1);
    // Deflate the constant vector and normalize.
    let proj = dot(&v, &ones);
    for (vi, oi) in v.iter_mut().zip(&ones) {
        *vi -= proj * oi;
    }
    let nv = norm(&v);
    assert!(nv > 0.0, "degenerate start vector");
    v.iter_mut().for_each(|x| *x /= nv);

    let mut w = vec![0.0; n];
    let mut prev_estimate = f64::INFINITY;
    let max_k = opts.max_iter.min(n - 1);

    for k in 0..max_k {
        // w = B v = c v − L v.
        op.apply(&v, &mut w);
        for (wi, vi) in w.iter_mut().zip(&v) {
            *wi = c * *vi - *wi;
        }
        let a = dot(&w, &v);
        alpha.push(a);
        // w -= a v + beta_{k-1} v_{k-1}
        for (wi, vi) in w.iter_mut().zip(&v) {
            *wi -= a * *vi;
        }
        if let Some(prev) = basis.last() {
            let b = *beta.last().expect("beta aligned with basis");
            for (wi, pi) in w.iter_mut().zip(prev) {
                *wi -= b * *pi;
            }
        }
        basis.push(std::mem::take(&mut v));
        // Full reorthogonalization against the basis and the deflated vector.
        let proj1 = dot(&w, &ones);
        for (wi, oi) in w.iter_mut().zip(&ones) {
            *wi -= proj1 * oi;
        }
        for q in &basis {
            let p = dot(&w, q);
            for (wi, qi) in w.iter_mut().zip(q) {
                *wi -= p * *qi;
            }
        }
        let b = norm(&w);
        // Ritz step every few iterations (and at the end / on breakdown).
        let krylov_exhausted = b < 1e-13;
        if (k + 1) % 5 == 0 || k + 1 == max_k || krylov_exhausted {
            let m = alpha.len();
            let mut d = alpha.clone();
            let mut e = vec![0.0; m];
            e[1..m].copy_from_slice(&beta[..m - 1]);
            tridiagonal_ql(&mut d, &mut e, m, None).expect("tridiagonal QL on Lanczos T");
            let theta = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let estimate = (c - theta).max(0.0);
            let converged =
                (estimate - prev_estimate).abs() <= opts.tol * estimate.abs().max(1e-300);
            prev_estimate = estimate;
            if converged || krylov_exhausted || k + 1 == max_k {
                return (estimate, k + 1);
            }
        }
        beta.push(b);
        v = w.clone();
        v.iter_mut().for_each(|x| *x /= b);
    }
    (prev_estimate, max_k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::laplacian_lambda2;
    use dlb_graphs::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    #[test]
    fn laplacian_op_matches_dense() {
        let g = topology::torus2d(3, 4);
        let dense = crate::matrix::SymMatrix::laplacian(&g);
        let op = LaplacianOp::new(&g);
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut y1 = vec![0.0; 12];
        let mut y2 = vec![0.0; 12];
        dense.matvec(&x, &mut y1);
        op.apply(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn lanczos_matches_closed_form_cycle() {
        let n = 64;
        let g = topology::cycle(n);
        let (l2, _) = lanczos_lambda2(&g, LanczosOptions::default());
        let expect = 2.0 - 2.0 * (2.0 * PI / n as f64).cos();
        assert!((l2 - expect).abs() < 1e-7, "λ₂ = {l2}, want {expect}");
    }

    #[test]
    fn lanczos_matches_dense_on_irregular_graph() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = topology::gnp_connected(60, 0.12, &mut rng);
        let dense = laplacian_lambda2(&g).unwrap();
        let (l2, _) = lanczos_lambda2(&g, LanczosOptions::default());
        assert!((l2 - dense).abs() < 1e-6, "lanczos {l2} vs dense {dense}");
    }

    #[test]
    fn lanczos_hypercube() {
        let g = topology::hypercube(7); // n = 128, λ₂ = 2
        let (l2, _) = lanczos_lambda2(&g, LanczosOptions::default());
        assert!((l2 - 2.0).abs() < 1e-7, "λ₂ = {l2}");
    }

    #[test]
    fn lanczos_complete_graph_degenerate_spectrum() {
        let g = topology::complete(32); // λ₂ = n with multiplicity n-1
        let (l2, _) = lanczos_lambda2(&g, LanczosOptions::default());
        assert!((l2 - 32.0).abs() < 1e-6, "λ₂ = {l2}");
    }

    #[test]
    fn lanczos_disconnected_gives_zero() {
        let g = dlb_graphs::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let (l2, _) = lanczos_lambda2(&g, LanczosOptions::default());
        assert!(l2.abs() < 1e-8, "λ₂ = {l2} for disconnected graph");
    }

    #[test]
    fn lanczos_two_nodes() {
        let g = topology::path(2); // L = [[1,-1],[-1,1]], λ₂ = 2
        let (l2, _) = lanczos_lambda2(&g, LanczosOptions::default());
        assert!((l2 - 2.0).abs() < 1e-9, "λ₂ = {l2}");
    }

    #[test]
    fn lanczos_large_torus_fast_and_accurate() {
        let g = topology::torus2d(40, 40); // n = 1600
        let (l2, iters) = lanczos_lambda2(&g, LanczosOptions::default());
        let expect = 2.0 - 2.0 * (2.0 * PI / 40.0).cos();
        assert!((l2 - expect).abs() < 1e-6, "λ₂ = {l2}, want {expect}");
        assert!(iters <= 300);
    }
}
