//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! Implements a small wall-clock benchmark harness behind criterion's
//! interface: `criterion_group!` / `criterion_main!`, benchmark groups,
//! [`BenchmarkId`], and `Bencher::iter`. Each benchmark warms up for the
//! configured duration, then collects `sample_size` timed samples and
//! reports min / median / mean per-iteration times on stdout.
//!
//! Command-line integration is minimal: any non-flag argument is treated as
//! a substring filter on the full benchmark id (matching `cargo bench --
//! <filter>`), and the flags cargo passes to bench binaries (`--bench`,
//! `--test`) are accepted and ignored. Under `--test` each benchmark runs
//! exactly one iteration so `cargo test --benches` stays fast.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One benchmark's timing summary, recorded by every `Bencher` report so
/// bench binaries can post-process results (e.g. emit machine-readable
/// JSON) without re-timing.
#[derive(Debug, Clone)]
pub struct SampleReport {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Median sample, nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean over samples, nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

static REPORTS: Mutex<Vec<SampleReport>> = Mutex::new(Vec::new());

/// Drains every report recorded so far (in execution order). Call after
/// running the benchmark groups to export the results.
pub fn take_reports() -> Vec<SampleReport> {
    std::mem::take(&mut REPORTS.lock().expect("reports lock"))
}

/// Top-level harness state (subset of upstream `Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        self.run_one(&id.full_name(), f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, full_id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: if self.test_mode { 1 } else { self.sample_size },
            warm_up_time: if self.test_mode {
                Duration::ZERO
            } else {
                self.warm_up_time
            },
            measurement_time: if self.test_mode {
                Duration::ZERO
            } else {
                self.measurement_time
            },
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(full_id);
    }
}

/// A benchmark identifier `function_name/parameter` (subset of upstream).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let full = format!("{}/{}", self.name, id.into().full_name());
        self.criterion.run_one(&full, f);
    }

    /// Benchmarks `f` with a borrowed input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.into().full_name());
        self.criterion.run_one(&full, |b| f(b, input));
    }

    /// Ends the group (upstream flushes reports here; the shim reports
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run the routine until the warm-up budget is spent,
        // measuring a rough per-iteration cost to size the sample batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample so that all samples together fill the
        // measurement budget, with at least one iteration per sample.
        let budget = self.measurement_time.as_secs_f64().max(1e-9);
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / iters_per_sample as u32);
        }
    }

    fn report(&self, full_id: &str) {
        if self.samples.is_empty() {
            println!("{full_id:<56} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{full_id:<56} time: [min {} | median {} | mean {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
        REPORTS.lock().expect("reports lock").push(SampleReport {
            id: full_id.to_string(),
            min_ns: min.as_nanos() as f64,
            median_ns: median.as_nanos() as f64,
            mean_ns: mean.as_nanos() as f64,
            samples: sorted.len(),
        });
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function (subset of upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the workspace's benches use directly).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.test_mode = false;
        c.filter = None;
        let mut ran = false;
        let mut group = c.benchmark_group("shim");
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).full_name(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").full_name(), "x");
        assert_eq!(BenchmarkId::from("plain").full_name(), "plain");
    }
}
