//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to a crates registry, so this crate
//! provides a deterministic, dependency-free stand-in: [`rngs::StdRng`] is a
//! xoshiro256** generator seeded through SplitMix64. Streams are *not*
//! bit-compatible with upstream `rand`'s `StdRng` (which is ChaCha12); the
//! workspace only relies on determinism-under-seed and reasonable
//! statistical quality, both of which xoshiro256** provides.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce (stand-in for the `Standard`
/// distribution bound of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffle/choose extension trait (shim for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5..7);
            assert!((-5..7).contains(&x));
            let y: usize = r.gen_range(3..=3);
            assert_eq!(y, 3);
            let f: f64 = r.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use super::seq::SliceRandom;
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
