//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! Provides randomized property testing with deterministic per-test seeds:
//! [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter`, [`Just`],
//! [`collection::vec`], range and tuple strategies, and the [`proptest!`]
//! macro with `prop_assert!` / `prop_assert_eq!` / `prop_assume!`. Unlike
//! upstream proptest there is **no shrinking**: a failing case panics with
//! the case index, and the deterministic seeding makes every failure
//! reproducible by rerunning the test.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

/// The RNG handed to strategies (deterministic per test and case).
pub type TestRng = StdRng;

/// Builds the deterministic RNG for one test case.
pub fn test_rng(test_path: &str, case: u32) -> TestRng {
    // FNV-1a over the fully qualified test name, mixed with the case index,
    // so every test gets an independent but reproducible stream.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37))
}

/// Runner configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values (subset of upstream `Strategy`; values are
/// produced directly rather than through value trees, and never shrunk).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates with `self`, then with the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerating, up to an attempt cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        )
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specifications accepted by [`vec()`].
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Reads the `PROPTEST_CASES` environment variable: a **cap** on the
/// per-test case count. Unlike upstream proptest (where the variable
/// *overrides* the configured count), the cap only ever lowers a test's
/// configured cases — CI uses it to keep a grown property suite under
/// the job timeout without inflating tests that deliberately run few
/// cases. A set-but-invalid value panics, mirroring the workspace's
/// `DLB_THREADS` policy: a typo'd override that is silently ignored runs
/// a different test suite than the one asked for.
fn cases_cap() -> Option<u32> {
    let value = std::env::var("PROPTEST_CASES").ok()?;
    match value.trim().parse::<u32>() {
        Ok(n) if n >= 1 => Some(n),
        _ => panic!(
            "PROPTEST_CASES must be a positive integer, got {value:?} \
             (unset the variable to run the configured case counts)"
        ),
    }
}

/// Runs the body of one `proptest!` test for every case (capped by the
/// `PROPTEST_CASES` environment variable — a cap that only lowers the
/// configured count, panicking on a set-but-invalid value).
///
/// Used by the macro expansion; not part of the public upstream API.
pub fn run_cases(config: ProptestConfig, test_path: &str, mut case_body: impl FnMut(&mut TestRng)) {
    let cases = match cases_cap() {
        Some(cap) => config.cases.min(cap),
        None => config.cases,
    };
    for case in 0..cases {
        let mut rng = test_rng(test_path, case);
        case_body(&mut rng);
    }
}

/// Property-test macro (subset of upstream `proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_inner {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    // Closure so `prop_assume!` can abort a single case via
                    // `return`.
                    #[allow(clippy::redundant_closure_call)]
                    (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                        $body
                    })();
                },
            );
        }
        $crate::__proptest_inner!{ ($cfg) $($rest)* }
    };
}

/// Asserts inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($tt:tt)*)?) => {
        if !$cond {
            return;
        }
    };
}

/// Prelude matching `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(x in 0u32..100, (a, b) in (0i64..10, 0i64..10)) {
            prop_assert!(x < 100);
            prop_assert!(a < 10 && b < 10);
        }

        #[test]
        fn flat_map_and_vec(v in (1usize..8).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0.0f64..1.0, n))
        })) {
            let (n, items) = v;
            prop_assert_eq!(items.len(), n);
            prop_assert!(items.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn filter_and_assume(pair in (0u32..20, 0u32..20).prop_filter("distinct", |(u, v)| u != v)) {
            let (u, v) = pair;
            prop_assume!(u < v);
            prop_assert!(u != v);
        }
    }

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = {
            let mut rng = crate::test_rng("t", 3);
            (0..5).map(|_| rand::Rng::gen::<u64>(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::test_rng("t", 3);
            (0..5).map(|_| rand::Rng::gen::<u64>(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
