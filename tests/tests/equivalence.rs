//! Cross-executor equivalence invariants — the structural heart of the
//! reproduction:
//!
//! * the sequentialized replay reaches exactly the concurrent round's
//!   state (the telescoping fact the paper's proof rests on);
//! * the parallel executors are bit-identical to the serial ones;
//! * Algorithm 1 on an Algorithm-2 link graph equals Algorithm 2;
//! * the dynamic machinery over a constant sequence equals the fixed
//!   executor.

use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::random_partner::{partner_round, sample_partners};
use dlb_core::seq::{sequentialized_round, sequentialized_round_discrete};
use dlb_dynamics::partners::sample_to_graph;
use dlb_dynamics::{run_dynamic_continuous, StaticSequence};
use dlb_tests::{rng, standard_small_graphs};
use rand::Rng;

fn continuous_loads_for(n: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0.0..1000.0)).collect()
}

fn discrete_loads_for(n: usize, seed: u64) -> Vec<i64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0..100_000)).collect()
}

#[test]
fn sequentialized_equals_concurrent_on_every_graph() {
    for (name, g) in standard_small_graphs() {
        let init = continuous_loads_for(g.n(), 0xA11);
        let mut conc = init.clone();
        ContinuousDiffusion::new(&g).engine().round(&mut conc);
        let mut seq = init;
        sequentialized_round(&g, &mut seq);
        for (i, (a, b)) in conc.iter().zip(&seq).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "{name}: node {i}: concurrent {a} vs sequentialized {b}"
            );
        }
    }
}

#[test]
fn discrete_sequentialized_equals_concurrent_exactly_on_every_graph() {
    for (name, g) in standard_small_graphs() {
        let init = discrete_loads_for(g.n(), 0xA12);
        let mut conc = init.clone();
        DiscreteDiffusion::new(&g).engine().round(&mut conc);
        let mut seq = init;
        sequentialized_round_discrete(&g, &mut seq);
        assert_eq!(conc, seq, "{name}: discrete replay deviated");
    }
}

#[test]
fn parallel_continuous_bit_identical_on_every_graph() {
    for (name, g) in standard_small_graphs() {
        let init = continuous_loads_for(g.n(), 0xA13);
        let mut serial = init.clone();
        let mut serial_exec = ContinuousDiffusion::new(&g).engine();
        for _ in 0..5 {
            serial_exec.round(&mut serial);
        }
        for threads in [2usize, 3, 7] {
            let mut par = init.clone();
            let mut par_exec = ContinuousDiffusion::new(&g).engine_parallel(threads);
            for _ in 0..5 {
                par_exec.round(&mut par);
            }
            assert_eq!(serial, par, "{name} with {threads} threads");
        }
    }
}

#[test]
fn parallel_discrete_bit_identical_on_every_graph() {
    for (name, g) in standard_small_graphs() {
        let init = discrete_loads_for(g.n(), 0xA14);
        let mut serial = init.clone();
        let mut serial_exec = DiscreteDiffusion::new(&g).engine();
        for _ in 0..5 {
            serial_exec.round(&mut serial);
        }
        let mut par = init;
        let mut par_exec = DiscreteDiffusion::new(&g).engine_parallel(4);
        for _ in 0..5 {
            par_exec.round(&mut par);
        }
        assert_eq!(serial, par, "{name}");
    }
}

#[test]
fn algorithm2_is_algorithm1_on_link_graph() {
    for n in [8usize, 33, 120] {
        let mut r = rng(0xA15 ^ n as u64);
        let sample = sample_partners(n, &mut r);
        let g = sample_to_graph(n, &sample);
        let init = continuous_loads_for(n, 0xA16);
        let mut via1 = init.clone();
        ContinuousDiffusion::new(&g).engine().round(&mut via1);
        let mut via2 = init;
        partner_round(&sample, &mut via2);
        for (a, b) in via1.iter().zip(&via2) {
            assert!((a - b).abs() < 1e-9, "n = {n}: {a} vs {b}");
        }
    }
}

#[test]
fn dynamic_static_sequence_equals_fixed_network() {
    for (name, g) in standard_small_graphs() {
        let init = continuous_loads_for(g.n(), 0xA17);
        let mut fixed = init.clone();
        let mut exec = ContinuousDiffusion::new(&g).engine();
        for _ in 0..7 {
            exec.round(&mut fixed);
        }
        let mut dynamic = init;
        let mut seq = StaticSequence::new(g);
        run_dynamic_continuous(&mut seq, &mut dynamic, f64::NEG_INFINITY, 7, false);
        assert_eq!(fixed, dynamic, "{name}");
    }
}
