//! End-to-end scenario subsystem invariants.
//!
//! * **Golden fixture** — `tests/golden/bursty_torus_6x6.toml` parses,
//!   round-trips through both writers, runs to its stop condition on
//!   serial and parallel engines with bit-identical Φ traces, and its
//!   pinned trace/total values never drift.
//! * **Conservation property** — for random graphs, workloads and round
//!   counts: `final = initial + Σinjected − Σconsumed` (exact for token
//!   scenarios, rounding-noise-tight for continuous ones), bit-identical
//!   across thread counts and stats modes.
//! * **Driver equivalence** — the dynamics drivers' pre-round hook
//!   (`run_dynamic_continuous_driven`) reproduces the scenario runner's
//!   trajectory exactly when fed the same workload.

use dlb_core::engine::StatsMode;
use dlb_core::init;
use dlb_dynamics::run_dynamic_continuous_driven;
use dlb_workloads::{
    DrainSpec, PatternSpec, PlacementSpec, ProtocolSpec, Scenario, ScenarioReport, ScenarioRunner,
    SequenceKind, SequenceSpec, StopSpec, TopologySpec, Workload, WorkloadCtx, WorkloadSpec,
};
use proptest::prelude::*;

const GOLDEN_TOML: &str = include_str!("golden/bursty_torus_6x6.toml");

fn trace_bits(report: &ScenarioReport) -> Vec<u64> {
    report.phi_trace.iter().map(|p| p.to_bits()).collect()
}

// ---------------------------------------------------------------------------
// Golden fixture
// ---------------------------------------------------------------------------

/// Recorded from the fixture's pinning run; the trajectory is fully
/// deterministic (seeded workload, serial workload application, blocked
/// stats reductions), so these must reproduce bit for bit.
const GOLDEN_ROUNDS: usize = 48;
const GOLDEN_PHI_BITS: [(usize, u64); 4] = [
    (0, 0x4128085800000000),  // Φ₀ = 787500 (spike on 36 nodes, avg 25)
    (1, 0x411B3428EF1EA036),  // 445706.23351526575
    (24, 0x40EF35A0CAE3FC2E), // 63917.02476691488
    (48, 0x40C7D7625FD3C1D6), // 12206.768549413344
];
const GOLDEN_FINAL_TOTAL_BITS: u64 = 0x408F1938621F5507; // 995.1525309036086
const GOLDEN_INJECTED_BITS: u64 = 0x40B0E00000000001; // 4320.000000000001
const GOLDEN_CONSUMED_BITS: u64 = 0x40B080D8F3BC1560; // 4224.847469096392

#[test]
fn golden_fixture_parses_round_trips_and_pins_the_trajectory() {
    let scenario = Scenario::from_toml(GOLDEN_TOML).expect("fixture parses");
    assert_eq!(scenario.name, "golden-bursty-torus-6x6");
    assert_eq!(scenario.workloads.len(), 2);

    // The file round-trips through both writers.
    let rewritten = Scenario::from_toml(&scenario.to_toml()).expect("writer output parses");
    assert_eq!(scenario, rewritten, "TOML round trip");
    let rejsonl = Scenario::from_jsonl(&scenario.to_jsonl()).expect("JSONL output parses");
    assert_eq!(scenario, rejsonl, "JSON-lines round trip");

    // The run is pinned bit for bit.
    let report = scenario.run().expect("fixture runs");
    assert_eq!(report.rounds, GOLDEN_ROUNDS);
    assert_eq!(report.phi_trace.len(), GOLDEN_ROUNDS + 1);
    for (k, bits) in GOLDEN_PHI_BITS {
        assert_eq!(
            report.phi_trace[k].to_bits(),
            bits,
            "Φ trace drifted at round {k}: got {:?}",
            report.phi_trace[k]
        );
    }
    assert_eq!(report.final_total.to_bits(), GOLDEN_FINAL_TOTAL_BITS);
    assert_eq!(report.injected_total.to_bits(), GOLDEN_INJECTED_BITS);
    assert_eq!(report.consumed_total.to_bits(), GOLDEN_CONSUMED_BITS);

    // Conservation holds (continuous: to rounding noise).
    assert!(
        report.conservation_relative_error() < 1e-12,
        "conservation error {}",
        report.conservation_error()
    );
}

#[test]
fn golden_fixture_is_bit_identical_on_parallel_engines() {
    let scenario = Scenario::from_toml(GOLDEN_TOML).unwrap();
    let serial = scenario.run().unwrap();
    for threads in [2usize, 3, 5] {
        let par = ScenarioRunner::new(scenario.clone())
            .with_threads(threads)
            .run()
            .unwrap();
        assert_eq!(trace_bits(&serial), trace_bits(&par), "threads = {threads}");
        assert_eq!(
            serial.final_total.to_bits(),
            par.final_total.to_bits(),
            "threads = {threads}"
        );
        assert_eq!(par.threads, threads);
    }
}

#[test]
fn golden_fixture_is_stats_mode_independent() {
    let scenario = Scenario::from_toml(GOLDEN_TOML).unwrap();
    let full = scenario.run().unwrap();
    for mode in [StatsMode::EveryK(5), StatsMode::PhiOnly, StatsMode::Off] {
        let lazy = ScenarioRunner::new(scenario.clone())
            .with_stats(mode)
            .run()
            .unwrap();
        assert_eq!(trace_bits(&full), trace_bits(&lazy), "{mode:?}");
        assert_eq!(
            full.injected_total.to_bits(),
            lazy.injected_total.to_bits(),
            "{mode:?}"
        );
        assert_eq!(
            full.consumed_total.to_bits(),
            lazy.consumed_total.to_bits(),
            "{mode:?}"
        );
    }
}

#[test]
fn golden_jsonl_report_carries_the_conservation_fields() {
    let report = Scenario::from_toml(GOLDEN_TOML).unwrap().run().unwrap();
    let jsonl = report.to_jsonl();
    let header = jsonl.lines().next().unwrap();
    assert!(header.contains("\"schema\": \"dlb-scenario/1\""));
    for field in [
        "initial_total",
        "final_total",
        "injected_total",
        "consumed_total",
        "conservation_error",
        "steady_phi_mean",
    ] {
        assert!(header.contains(field), "header lacks {field}: {header}");
    }
    assert_eq!(jsonl.lines().count(), report.rounds + 1);
}

// ---------------------------------------------------------------------------
// Dynamics-driver equivalence
// ---------------------------------------------------------------------------

/// The scenario runner and the dynamics drivers' pre-round hook are two
/// entry points to the same semantics: feeding the driver the scenario's
/// compiled workload must reproduce the scenario trajectory exactly.
#[test]
fn dynamic_driver_hook_matches_scenario_runner_bitwise() {
    let scenario = Scenario::new(
        "hooked",
        TopologySpec::Torus2d { rows: 5, cols: 5 },
        ProtocolSpec::Continuous,
    )
    .with_sequence(SequenceSpec {
        kind: SequenceKind::Iid { p: 0.7, seed: 23 },
        outage_every: None,
    })
    .with_init(init::Workload::Spike, 40.0, 9)
    .with_workload(WorkloadSpec::Arrivals {
        pattern: PatternSpec::Constant { per_round: 50.0 },
        placement: PlacementSpec::Zipf { s: 1.0, seed: 4 },
    })
    .with_workload(WorkloadSpec::Drain {
        model: DrainSpec::Proportional { fraction: 0.05 },
    })
    .with_stop(StopSpec::Rounds { rounds: 30 });

    let report = scenario.run().unwrap();

    // Reconstruct the same run through the dynamics driver's hook.
    let n = scenario.topology.n();
    let g = scenario.topology.build();
    let mut seq = scenario.sequence.as_ref().unwrap().build(g);
    let mut loads = init::continuous_loads(
        n,
        scenario.init.avg,
        scenario.init.dist,
        &mut dlb_tests::rng(9),
    );
    let ctx = WorkloadCtx {
        initial_total: loads.iter().sum(),
    };
    let mut workload =
        dlb_workloads::scenario::compile_workloads::<f64>(&scenario.workloads, n).unwrap();
    let out = run_dynamic_continuous_driven(
        &mut seq,
        &mut loads,
        f64::NEG_INFINITY,
        30,
        false,
        |round, l: &mut Vec<f64>| {
            workload.apply(round as u64, l, &ctx);
        },
    );
    assert_eq!(out.rounds, report.rounds);
    assert_eq!(
        out.final_phi.to_bits(),
        report.phi_final().to_bits(),
        "driver-hook trajectory diverged from the scenario runner"
    );
    assert_eq!(
        loads.iter().sum::<f64>().to_bits(),
        report.final_total.to_bits()
    );
}

// ---------------------------------------------------------------------------
// Conservation properties
// ---------------------------------------------------------------------------

fn arb_topology() -> impl Strategy<Value = TopologySpec> {
    (0u8..5, 4usize..36, 2usize..6).prop_map(|(family, n, side)| match family {
        0 => TopologySpec::Cycle { n },
        1 => TopologySpec::Complete { n },
        2 => TopologySpec::Grid2d {
            rows: side,
            cols: side + 1,
        },
        3 => TopologySpec::Hypercube {
            dim: side as u32, // 2..6
        },
        _ => TopologySpec::Torus2d {
            rows: side + 1,
            cols: side + 2,
        },
    })
}

fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    (0u8..4, 0.0f64..200.0, 0u64..1000, 1u64..10, 1u64..10).prop_map(
        |(kind, rate, seed, on, off)| match kind {
            0 => WorkloadSpec::Arrivals {
                pattern: PatternSpec::Constant { per_round: rate },
                placement: if seed % 2 == 0 {
                    PlacementSpec::Zipf { s: 1.1, seed }
                } else {
                    PlacementSpec::Uniform
                },
            },
            1 => WorkloadSpec::Arrivals {
                pattern: PatternSpec::Bursty {
                    high: rate,
                    low: 0.0,
                    on_rounds: on,
                    off_rounds: off,
                },
                placement: PlacementSpec::Uniform,
            },
            2 => WorkloadSpec::Drain {
                model: DrainSpec::FixedCapacity {
                    per_node: rate / 20.0,
                },
            },
            _ => WorkloadSpec::Drain {
                model: DrainSpec::Proportional {
                    fraction: rate / 250.0, // < 0.8
                },
            },
        },
    )
}

fn arb_workloads() -> impl Strategy<Value = Vec<WorkloadSpec>> {
    proptest::collection::vec(arb_workload(), 0..4)
}

fn scenario_of(
    topology: TopologySpec,
    protocol: ProtocolSpec,
    workloads: Vec<WorkloadSpec>,
    rounds: usize,
    seed: u64,
) -> Scenario {
    let mut s = Scenario::new("prop", topology, protocol)
        .with_init(init::Workload::UniformRandom, 50.0, seed)
        .with_stop(StopSpec::Rounds { rounds });
    for w in workloads {
        s = s.with_workload(w);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Continuous scenarios conserve load to floating-point noise and are
    /// bit-identical across thread counts and stats modes.
    #[test]
    fn continuous_scenarios_conserve_and_replay(
        topology in arb_topology(),
        workloads in arb_workloads(),
        rounds in 1usize..25,
        seed in 0u64..1000,
        threads in 2usize..5,
    ) {
        let sc = scenario_of(topology, ProtocolSpec::Continuous, workloads, rounds, seed);
        let report = sc.run().unwrap();
        prop_assert_eq!(report.rounds, rounds);
        prop_assert!(
            report.conservation_relative_error() < 1e-9,
            "conservation error {}", report.conservation_error()
        );
        // Per-round conservation: Δtotal ≡ injected − consumed (checked
        // against the recorded per-round totals).
        let mut prev = report.initial_total;
        for r in &report.records {
            let expected = prev + r.injected - r.consumed;
            let scale = prev.abs().max(1.0);
            prop_assert!(
                (r.total - expected).abs() / scale < 1e-9,
                "round {}: total {} vs expected {}", r.round, r.total, expected
            );
            prev = r.total;
        }
        let par = ScenarioRunner::new(sc.clone()).with_threads(threads).run().unwrap();
        prop_assert_eq!(trace_bits(&report), trace_bits(&par));
        let lazy = ScenarioRunner::new(sc).with_stats(StatsMode::Off).run().unwrap();
        prop_assert_eq!(trace_bits(&report), trace_bits(&lazy));
    }

    /// Token scenarios conserve **exactly**, every round.
    #[test]
    fn discrete_scenarios_conserve_exactly(
        topology in arb_topology(),
        workloads in arb_workloads(),
        rounds in 1usize..25,
        seed in 0u64..1000,
        threads in 2usize..5,
    ) {
        let sc = scenario_of(topology, ProtocolSpec::Discrete, workloads, rounds, seed);
        let report = sc.run().unwrap();
        prop_assert_eq!(report.conservation_error(), 0.0);
        let mut prev = report.initial_total;
        for r in &report.records {
            prop_assert_eq!(
                r.total, prev + r.injected - r.consumed,
                "round {}: exact token conservation violated", r.round
            );
            prop_assert_eq!(r.total.fract(), 0.0, "non-integral token total");
            prev = r.total;
        }
        let par = ScenarioRunner::new(sc).with_threads(threads).run().unwrap();
        prop_assert_eq!(trace_bits(&report), trace_bits(&par));
    }

    /// Heterogeneous scenarios (capacity-weighted Φ_c) conserve too.
    #[test]
    fn heterogeneous_scenarios_conserve(
        topology in arb_topology(),
        workloads in arb_workloads(),
        rounds in 1usize..20,
        ratio in 1.0f64..8.0,
    ) {
        let sc = scenario_of(
            topology,
            ProtocolSpec::Heterogeneous {
                capacities: dlb_workloads::CapacitySpec::TwoTier {
                    fast_fraction: 0.25,
                    ratio,
                },
            },
            workloads,
            rounds,
            1,
        );
        let report = sc.run().unwrap();
        prop_assert!(
            report.conservation_relative_error() < 1e-9,
            "conservation error {}", report.conservation_error()
        );
    }
}
