//! Adversarial-shape equivalence tests for the kernel dispatch layer:
//! every [`KernelKind`] must reproduce the per-node `node_new_load`
//! reference bit-for-bit on graphs chosen to stress the dispatcher's
//! edges — degree-0 nodes (empty runs), stars (one long leaf run plus a
//! hub whose degree matches no unrolled variant), degree runs that do
//! not tile the 8-wide lane chunks, and shard counts exceeding `n`.
//!
//! These complement `engine_properties.rs` (random graphs, all 16
//! protocols): here the *graphs* are adversarial and the reference is
//! the protocol's own scalar gather, exercised per node.

use dlb_core::continuous::{ContinuousDiffusion, GeneralizedDiffusion};
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::{Backend, Engine, Protocol, StatsMode};
use dlb_core::KernelKind;
use dlb_graphs::{topology, Graph, PartitionSpec};

/// Graphs chosen to stress the dispatcher: regular (torus, hypercube,
/// complete), mixed-run (star, binary tree, path), lane-remainder
/// degrees (complete(10): degree 9 = 8 + 1), and isolated nodes
/// (explicit edge lists with unreferenced ids).
fn adversarial_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("torus2d_5x7", topology::torus2d(5, 7)),
        ("cycle_17", topology::cycle(17)),
        ("hypercube_5", topology::hypercube(5)),
        ("complete_10", topology::complete(10)),
        ("star_64", topology::star(64)),
        ("binary_tree_21", topology::binary_tree(21)),
        ("path_11", topology::path(11)),
        (
            // Nodes 3..9 isolated: the plan must cover them with a
            // degree-0 run and the kernels must pass loads through.
            "isolated_tail",
            Graph::from_edges(9, [(0, 1), (1, 2)]).unwrap(),
        ),
        (
            // Degree runs of length 5 — shorter than the 8-wide lane
            // chunks and not aligned to any unrolled width.
            "comb_12",
            {
                let mut b = dlb_graphs::GraphBuilder::new(12).unwrap();
                for i in 0..6u32 {
                    if i + 1 < 6 {
                        b.add_edge(i, i + 1).unwrap();
                    }
                    b.add_edge(i, 6 + i).unwrap();
                }
                b.build()
            },
        ),
    ]
}

fn f64_loads(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 131 + 17) % 4099) as f64 / 7.0)
        .collect()
}

fn i64_loads(n: usize) -> Vec<i64> {
    (0..n).map(|i| ((i * 1009 + 7) % 50_000) as i64).collect()
}

/// One serial engine round per kernel kind, compared bitwise against the
/// protocol's own per-node gather (`node_new_load` over the snapshot).
fn assert_kernels_match_reference<P, M>(graph_name: &str, make: M, init: &[P::Load])
where
    P: Protocol + Sync,
    P::Load: PartialEq + std::fmt::Debug,
    M: Fn() -> P,
{
    let protocol = make();
    let reference: Vec<P::Load> = (0..protocol.n())
        .map(|v| protocol.node_new_load(init, v as u32))
        .collect();
    for kind in KernelKind::ALL {
        let mut engine = Engine::serial(make()).with_kernel(kind);
        let mut loads = init.to_vec();
        engine.round(&mut loads);
        assert_eq!(
            reference,
            loads,
            "{graph_name}: {} kernel diverged from node_new_load ({})",
            kind.name(),
            make().name()
        );
    }
}

#[test]
fn continuous_kernels_match_per_node_reference_on_adversarial_shapes() {
    for (name, g) in adversarial_graphs() {
        let init = f64_loads(g.n());
        assert_kernels_match_reference(name, || ContinuousDiffusion::new(&g), &init);
    }
}

#[test]
fn generalized_kernels_match_per_node_reference_on_adversarial_shapes() {
    for (name, g) in adversarial_graphs() {
        let init = f64_loads(g.n());
        assert_kernels_match_reference(name, || GeneralizedDiffusion::new(&g, 6.0), &init);
    }
}

#[test]
fn discrete_kernels_match_per_node_reference_on_adversarial_shapes() {
    for (name, g) in adversarial_graphs() {
        let init = i64_loads(g.n());
        assert_kernels_match_reference(name, || DiscreteDiffusion::new(&g), &init);
    }
}

/// Multi-round kernel × backend equivalence on the adversarial shapes,
/// with shard counts exceeding `n` — the parallel path the single-round
/// serial check above cannot see (list gathers over shard interiors and
/// boundaries, halo frames on the message backend).
#[test]
fn kernel_backend_cross_product_stays_bit_identical_with_excess_shards() {
    for (name, g) in adversarial_graphs() {
        let init = f64_loads(g.n());
        let mut reference = init.clone();
        Engine::serial(ContinuousDiffusion::new(&g))
            .with_kernel(KernelKind::Scalar)
            .rounds(&mut reference, 5);
        let backends = [
            Backend::Pool { threads: 3 },
            Backend::Sharded {
                partition: PartitionSpec::Range { shards: g.n() + 5 },
                threads: 2,
            },
            Backend::Sharded {
                partition: PartitionSpec::Bfs { shards: 4 },
                threads: 2,
            },
            Backend::Message {
                partition: PartitionSpec::Range { shards: g.n() + 5 },
                resident: false,
            },
        ];
        for kind in KernelKind::ALL {
            for backend in backends {
                let mut engine =
                    Engine::with_backend(ContinuousDiffusion::new(&g), backend).with_kernel(kind);
                let mut loads = init.clone();
                engine.rounds(&mut loads, 5);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(&reference),
                    bits(&loads),
                    "{name}: {backend:?} with the {} kernel diverged",
                    kind.name()
                );
            }
        }
    }
}

/// Degree-0 nodes must round-trip their load exactly — including the
/// i64 path, whose lift/lower crosses an i128 accumulator.
#[test]
fn isolated_nodes_pass_loads_through_unchanged() {
    let g = Graph::from_edges(7, [(0, 1)]).unwrap();
    for kind in KernelKind::ALL {
        let mut loads = vec![5i64, -3, 1 << 55, -(1 << 55), 0, 42, i64::MAX / 2];
        let expected = {
            let mut e = loads.clone();
            // Only the edge's endpoints move: floor((5 - (-3))/4) = 2.
            e[0] -= 2;
            e[1] += 2;
            e
        };
        // Stats off: the Φ sweep would square the 2^55-scale loads, and
        // this test is about the kernel path, not the statistics.
        Engine::serial(DiscreteDiffusion::new(&g))
            .with_kernel(kind)
            .with_stats_mode(StatsMode::Off)
            .round(&mut loads);
        assert_eq!(expected, loads, "{} kernel", kind.name());
    }
}
