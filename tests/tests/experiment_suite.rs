//! Whole-suite smoke test: every experiment E1–E18 runs in quick mode and
//! reports its expected validation outcome. This is the CI-speed version
//! of `repro all` (whose full-mode output EXPERIMENTS.md records).

use dlb_analysis::experiments::{run_all, run_by_id, ExpConfig};

#[test]
fn all_experiments_run_and_validate_in_quick_mode() {
    let cfg = ExpConfig::quick(0xC1);
    let reports = run_all(&cfg);
    assert_eq!(reports.len(), 18);

    for report in &reports {
        // Every report renders non-trivially.
        let text = report.render();
        assert!(text.len() > 100, "{}: suspiciously short report", report.id);
        assert!(!report.tables.is_empty(), "{}: no tables", report.id);
        for t in &report.tables {
            assert!(
                !t.rows.is_empty(),
                "{}: empty table '{}'",
                report.id,
                t.title
            );
        }
        // Every experiment carries a machine-checkable verdict, and it
        // passes (the `repro verify` CI gate).
        assert_eq!(
            report.passed,
            Some(true),
            "{}: paper claim did not validate",
            report.id
        );
    }

    // The validation sentinels embedded in the notes.
    let note = |id: &str| -> String {
        reports
            .iter()
            .find(|r| r.id.eq_ignore_ascii_case(id))
            .unwrap_or_else(|| panic!("missing report {id}"))
            .notes
            .join(" ")
    };
    assert!(note("E1").contains("violations: 0"));
    assert!(note("E2").contains("Lemma 1 violations: 0"));
    assert!(note("E4").contains("bound violations: 0"));
    assert!(note("E6").contains("violations: 0"));
    assert!(note("E7").contains("violations: 0"));
    assert!(note("E8").contains("bound satisfied: true"));
    assert!(note("E9").contains("true"));
    assert!(note("E10").contains("respected: true"));
    assert!(note("E11").contains("respected: true"));
    assert!(note("E13").contains("sandwich holds on all exhaustively-checked graphs: true"));
    assert!(note("E14").contains("bit-identical to the serial executor: true"));
    assert!(note("E15").contains("bit-identical to Algorithm 1: true"));
    assert!(note("E16").contains("5%): true"));
    assert!(note("E17").contains("(0 increases"));
    assert!(note("E18").contains("violations: 0"));
}

#[test]
fn run_by_id_accepts_aliases() {
    let cfg = ExpConfig::quick(0xC2);
    for id in ["e1", "E1", "1", "e01"] {
        let r = run_by_id(id, &cfg).unwrap_or_else(|| panic!("id {id} not found"));
        assert_eq!(r.id, "E1");
    }
}

#[test]
fn experiment_tables_export_csv() {
    let cfg = ExpConfig::quick(0xC3);
    let report = run_by_id("e9", &cfg).expect("E9");
    for t in &report.tables {
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), t.rows.len() + 1);
        assert_eq!(
            lines[0].split(',').count(),
            t.headers.len(),
            "header arity mismatch in CSV"
        );
    }
}
