//! Property-based tests (proptest) for the workspace's core invariants.

use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::potential;
use dlb_core::seq::{sequentialized_round, sequentialized_round_discrete};
use dlb_graphs::{topology, Graph};
use dlb_spectral::eigen;
use dlb_spectral::matrix::SymMatrix;
use proptest::prelude::*;

/// Strategy: a connected graph from a random family + size.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (0u8..5, 4usize..24).prop_map(|(family, n)| match family {
        0 => topology::path(n),
        1 => topology::cycle(n.max(3)),
        2 => topology::star(n),
        3 => topology::binary_tree(n),
        _ => topology::complete(n.clamp(2, 12)),
    })
}

/// Strategy: a graph together with a matching load vector.
fn graph_and_discrete_loads() -> impl Strategy<Value = (Graph, Vec<i64>)> {
    arb_graph().prop_flat_map(|g| {
        let n = g.n();
        (Just(g), proptest::collection::vec(0i64..2_000_000, n))
    })
}

fn graph_and_continuous_loads() -> impl Strategy<Value = (Graph, Vec<f64>)> {
    arb_graph().prop_flat_map(|g| {
        let n = g.n();
        (Just(g), proptest::collection::vec(0.0f64..1e6, n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lemma10_identity_exact((_, loads) in graph_and_discrete_loads()) {
        prop_assert!(potential::lemma10_exact_identity_holds(&loads));
    }

    #[test]
    fn lemma10_identity_with_negatives(loads in proptest::collection::vec(-1_000_000_000i64..1_000_000_000, 1..64)) {
        prop_assert!(potential::lemma10_exact_identity_holds(&loads));
    }

    #[test]
    fn discrete_round_conserves_and_is_monotone((g, mut loads) in graph_and_discrete_loads()) {
        let total = potential::total_discrete(&loads);
        let phi_before = potential::phi_hat(&loads);
        let stats = DiscreteDiffusion::new(&g).engine().round(&mut loads).expect("full stats");
        prop_assert_eq!(potential::total_discrete(&loads), total);
        prop_assert!(stats.phi_hat_after <= phi_before);
        prop_assert_eq!(stats.phi_hat_before, phi_before);
    }

    #[test]
    fn discrete_nonnegative_loads_stay_nonnegative((g, mut loads) in graph_and_discrete_loads()) {
        DiscreteDiffusion::new(&g).engine().round(&mut loads).expect("full stats");
        prop_assert!(loads.iter().all(|&l| l >= 0));
    }

    #[test]
    fn continuous_round_conserves_and_is_monotone((g, mut loads) in graph_and_continuous_loads()) {
        let total: f64 = loads.iter().sum();
        let stats = ContinuousDiffusion::new(&g).engine().round(&mut loads).expect("full stats");
        let after: f64 = loads.iter().sum();
        prop_assert!((total - after).abs() <= 1e-9 * total.max(1.0));
        prop_assert!(stats.phi_after <= stats.phi_before * (1.0 + 1e-12) + 1e-9);
    }

    #[test]
    fn lemma1_certificates_never_violated((g, mut loads) in graph_and_continuous_loads()) {
        let round = sequentialized_round(&g, &mut loads);
        // Tolerance scales with magnitude (1e6 loads squared ~ 1e12).
        prop_assert_eq!(round.lemma1_violations(1e-3), 0);
    }

    #[test]
    fn discrete_telescoping_exact((g, mut loads) in graph_and_discrete_loads()) {
        let round = sequentialized_round_discrete(&g, &mut loads);
        let telescoped = round.total_drop_hat();
        let actual = round.phi_hat_before as i128 - round.phi_hat_after as i128;
        prop_assert_eq!(telescoped, actual);
    }

    #[test]
    fn spectrum_nonnegative_and_traces_match(g in arb_graph()) {
        let l = SymMatrix::laplacian(&g);
        let spec = eigen::laplacian_spectrum(&g).expect("spectrum");
        prop_assert!(spec[0].abs() < 1e-8);
        prop_assert!(spec.iter().all(|&x| x > -1e-8));
        let sum: f64 = spec.iter().sum();
        prop_assert!((sum - l.trace()).abs() < 1e-6 * l.trace().max(1.0));
    }

    #[test]
    fn graph_handshake_and_degree_bounds(g in arb_graph()) {
        prop_assert_eq!(g.degree_sum(), 2 * g.m());
        let max = g.nodes().map(|v| g.degree(v)).max().unwrap_or(0);
        prop_assert_eq!(max, g.max_degree());
    }

    #[test]
    fn matching_is_always_valid(g in arb_graph(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = dlb_graphs::matching::proposal_matching(&g, &mut rng);
        let mut seen = vec![false; g.n()];
        for &(u, v) in m.pairs() {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(!seen[u as usize] && !seen[v as usize]);
            seen[u as usize] = true;
            seen[v as usize] = true;
        }
    }

    #[test]
    fn partner_sample_structure(n in 2usize..200, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = dlb_core::random_partner::sample_partners(n, &mut rng);
        // links canonical + deduped
        for w in s.links.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // degree sum = 2·links
        let deg_sum: u32 = s.degrees.iter().sum();
        prop_assert_eq!(deg_sum as usize, 2 * s.links.len());
        prop_assert!(s.links.len() <= n);
    }

    #[test]
    fn workloads_conserve_total(n in 1usize..128, avg in 0i64..10_000) {
        use dlb_core::init::{discrete_loads, Workload};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for w in [Workload::Spike, Workload::Ramp, Workload::Bimodal, Workload::Balanced] {
            let v = discrete_loads(n, avg, w, &mut rng);
            prop_assert_eq!(
                potential::total_discrete(&v),
                avg as i128 * n as i128,
                "workload {:?}", w
            );
        }
    }
}
