//! Message-backend integration suite: shard-isolated rounds over channels
//! must reproduce every shared-memory trajectory bit for bit — through
//! the dynamics drivers, the scenario runner, and dynamic-graph plan
//! memoization — while the communication accounting stays consistent
//! with the partition module's brute-force counts.
//!
//! (Per-protocol serial ≡ message identity of loads and per-round stats
//! over random instances lives in `engine_properties.rs`; the
//! worker-panic barrier-safety test lives with the engine's unit tests;
//! this file covers the layers above the bare engine plus the
//! channel-layer exchange property.)

use dlb_core::engine::{Backend, Engine, StatsMode};
use dlb_core::potential::phi;
use dlb_dynamics::runner::DynamicContinuousDiffusion;
use dlb_dynamics::{
    run_dynamic_continuous, run_dynamic_continuous_on, run_dynamic_discrete,
    run_dynamic_discrete_on, IidSubgraphSequence, PeriodicSequence, StaticSequence,
};
use dlb_graphs::partition::{Partition, PartitionSpec, ShardPlan};
use dlb_graphs::{topology, Graph};
use dlb_workloads::{ExecSpec, Scenario, ScenarioRunner};
use proptest::prelude::*;

fn message(shards: usize) -> Backend {
    Backend::Message {
        partition: PartitionSpec::Bfs { shards },
        resident: false,
    }
}

#[test]
fn dynamic_continuous_identical_on_the_message_backend() {
    let ground = topology::hypercube(5); // n = 32
    let init: Vec<f64> = (0..32).map(|i| ((i * 13 + 5) % 37) as f64).collect();

    let mut serial_seq = IidSubgraphSequence::new(ground.clone(), 0.6, 42);
    let mut serial = init.clone();
    let a = run_dynamic_continuous(&mut serial_seq, &mut serial, f64::NEG_INFINITY, 12, false);

    for backend in [
        message(4),
        Backend::Message {
            partition: PartitionSpec::Range { shards: 7 },
            resident: false,
        },
    ] {
        let mut seq = IidSubgraphSequence::new(ground.clone(), 0.6, 42);
        let mut loads = init.clone();
        let b =
            run_dynamic_continuous_on(backend, &mut seq, &mut loads, f64::NEG_INFINITY, 12, false);
        assert_eq!(a.rounds, b.rounds, "{backend:?}");
        assert_eq!(
            a.final_phi.to_bits(),
            b.final_phi.to_bits(),
            "{backend:?}: final Φ diverged"
        );
        assert_eq!(serial, loads, "{backend:?}: loads diverged");
    }
}

#[test]
fn dynamic_discrete_identical_on_the_message_backend() {
    let ground = topology::torus2d(5, 5);
    let init: Vec<i64> = (0..25).map(|i| ((i * 977 + 31) % 4001) as i64).collect();

    let mut serial_seq = IidSubgraphSequence::new(ground.clone(), 0.7, 7);
    let mut serial = init.clone();
    let a = run_dynamic_discrete(&mut serial_seq, &mut serial, 0, 15, false);

    let mut seq = IidSubgraphSequence::new(ground, 0.7, 7);
    let mut loads = init;
    let b = run_dynamic_discrete_on(message(5), &mut seq, &mut loads, 0, 15, false);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.final_phi_hat, b.final_phi_hat);
    assert_eq!(serial, loads);
}

#[test]
fn message_plans_memoized_per_distinct_graph() {
    // A periodic schedule alternating two graphs must build (and
    // broadcast) exactly two exchange plans no matter how many rounds
    // run, and every round must still account its communication.
    let a = topology::torus2d(4, 4);
    let b = topology::grid2d(4, 4);
    let mut seq = PeriodicSequence::new(vec![a, b]);
    let mut engine = Engine::message(
        DynamicContinuousDiffusion::new(&mut seq),
        PartitionSpec::Bfs { shards: 4 },
    );
    let mut loads: Vec<f64> = (0..16).map(|i| (i % 5) as f64 * 3.0).collect();
    for _ in 0..10 {
        engine.round(&mut loads);
        let comm = engine.comm_metrics().expect("comm recorded per round");
        let metrics = engine.shard_metrics().expect("plan resolved");
        assert_eq!(
            comm.values_sent, metrics.halo,
            "per-round exchange must equal the current plan's halo"
        );
    }
    let metrics = engine.shard_metrics().expect("metrics");
    assert_eq!(metrics.plans_built, 2, "one plan per distinct graph");
    assert_eq!(metrics.shards, 4);
}

#[test]
fn comm_metrics_match_partition_brute_force() {
    let g = topology::torus2d(8, 8);
    let spec = PartitionSpec::Bfs { shards: 4 };
    let partition = spec.build(&g);
    let plan = ShardPlan::build(&g, &partition);

    let mut seq = StaticSequence::new(g.clone());
    let mut engine = Engine::message(DynamicContinuousDiffusion::new(&mut seq), spec);
    let mut loads = vec![0.0; 64];
    loads[0] = 640.0;
    engine.round(&mut loads);
    let comm = engine.comm_metrics().expect("comm");
    // Every halo entry crosses the boundary exactly once per round, as
    // one value inside one batched message per (source, destination)
    // shard pair.
    assert_eq!(comm.values_sent, plan.halo_total());
    assert_eq!(comm.halo_bytes, plan.halo_total() * 8);
    let pairs: usize = plan.views().iter().map(|v| v.halo_groups().len()).sum();
    assert_eq!(comm.messages, pairs);
    let max_send: usize = (0..plan.views().len())
        .map(|s| {
            plan.views()
                .iter()
                .flat_map(|v| v.halo_groups())
                .filter(|(src, _)| *src == s)
                .map(|(_, ids)| ids.len())
                .sum::<usize>()
        })
        .max()
        .unwrap();
    assert_eq!(comm.max_shard_values_sent, max_send);
    assert!(comm.messages > 0 && comm.values_sent > 0);
    // The comm volume is the halo, and a tile interior stays local.
    let metrics = engine.shard_metrics().expect("metrics");
    assert_eq!(metrics.halo, plan.halo_total());
    assert!(metrics.interior > 0);
}

#[test]
fn message_builtin_matches_its_serial_twin() {
    // `bursty-torus-message` is `bursty-torus` on shard-isolated
    // workers; everything but the name, backend, and comm totals must
    // agree bit for bit.
    let msg = Scenario::builtin("bursty-torus-message")
        .unwrap()
        .run()
        .unwrap();
    let serial = Scenario::builtin("bursty-torus").unwrap().run().unwrap();
    assert_eq!(msg.backend, "message");
    assert_eq!(msg.rounds, serial.rounds);
    let a: Vec<u64> = serial.phi_trace.iter().map(|p| p.to_bits()).collect();
    let b: Vec<u64> = msg.phi_trace.iter().map(|p| p.to_bits()).collect();
    assert_eq!(a, b);
    let comm = msg.comm.expect("message run reports comm totals");
    // Fixed graph ⇒ a constant per-round halo: totals divide evenly.
    assert_eq!(comm.values_sent % msg.rounds as u64, 0);
    assert!(serial.comm.is_none());
}

#[test]
fn message_scenario_files_round_trip_and_run() {
    let sc = Scenario::builtin("bursty-torus-message").unwrap();
    let toml = sc.to_toml();
    assert!(toml.contains("backend = \"message\""), "{toml}");
    assert!(toml.contains("shards = 8"), "{toml}");
    assert!(toml.contains("partition = \"bfs\""), "{toml}");
    assert!(!toml.contains("threads"), "message spec carries no threads");
    assert_eq!(Scenario::from_toml(&toml).unwrap(), sc);
    assert_eq!(Scenario::from_jsonl(&sc.to_jsonl()).unwrap(), sc);
}

#[test]
fn scenario_exec_override_onto_message_matches_reference() {
    let sc = Scenario::builtin("zipf-hypercube-drain").unwrap();
    let reference = ScenarioRunner::new(sc.clone()).run().unwrap();
    let run = ScenarioRunner::new(sc)
        .with_exec(ExecSpec::Message {
            partition: PartitionSpec::Range { shards: 6 },
            resident: false,
        })
        .run()
        .unwrap();
    assert_eq!(run.backend, "message");
    assert_eq!(reference.rounds, run.rounds);
    let a: Vec<u64> = reference.phi_trace.iter().map(|p| p.to_bits()).collect();
    let b: Vec<u64> = run.phi_trace.iter().map(|p| p.to_bits()).collect();
    assert_eq!(a, b, "Φ trace diverged");
    assert_eq!(reference.final_total.to_bits(), run.final_total.to_bits());
}

#[test]
fn stats_modes_remain_observers_on_the_message_backend() {
    let g = topology::torus2d(6, 6);
    let init: Vec<f64> = (0..36).map(|i| ((i * 7 + 1) % 23) as f64).collect();
    let run = |mode: StatsMode| {
        let mut seq = StaticSequence::new(g.clone());
        let mut engine = Engine::message(
            DynamicContinuousDiffusion::new(&mut seq),
            PartitionSpec::Bfs { shards: 4 },
        )
        .with_stats_mode(mode);
        let mut loads = init.clone();
        engine.rounds(&mut loads, 9);
        let phi_on_demand = engine.potential(&loads);
        (loads, phi_on_demand)
    };
    let (full, phi_full) = run(StatsMode::Full);
    for mode in [StatsMode::Off, StatsMode::PhiOnly, StatsMode::EveryK(4)] {
        let (loads, phi_mode) = run(mode);
        assert_eq!(full, loads, "{mode:?}");
        assert_eq!(phi_full.to_bits(), phi_mode.to_bits(), "{mode:?}");
    }
    assert!(phi_full < phi(&init));
}

// ---------------------------------------------------------------------------
// Shard-resident sessions: workers keep their owned loads across rounds,
// the coordinator ships workload deltas in and collects owned values out
// only when the stats mode (or a caller read) needs them. The trajectory
// must stay bit-identical to serial in every mode, and the new
// coordinator-transfer counters must prove steady-state rounds move only
// halo-sized traffic.
// ---------------------------------------------------------------------------

#[test]
fn resident_stats_modes_and_dynamic_graphs_stay_identical() {
    // Dynamic graphs force plan re-seeds mid-session (the collect-under-
    // the-old-plan path); every stats mode must still reproduce the
    // serial per-round stats and final loads bit for bit.
    let ground = topology::hypercube(5); // n = 32
    let init: Vec<f64> = (0..32).map(|i| ((i * 13 + 5) % 37) as f64).collect();
    for mode in [
        StatsMode::Full,
        StatsMode::PhiOnly,
        StatsMode::EveryK(3),
        StatsMode::Off,
    ] {
        let mut serial_seq = IidSubgraphSequence::new(ground.clone(), 0.6, 42);
        let mut serial_engine =
            Engine::serial(DynamicContinuousDiffusion::new(&mut serial_seq)).with_stats_mode(mode);
        let mut serial_loads = init.clone();
        let serial_stats: Vec<_> = (0..12)
            .map(|_| serial_engine.round(&mut serial_loads))
            .collect();

        let mut seq = IidSubgraphSequence::new(ground.clone(), 0.6, 42);
        let mut engine = Engine::message_resident(
            DynamicContinuousDiffusion::new(&mut seq),
            PartitionSpec::Bfs { shards: 4 },
        )
        .with_stats_mode(mode);
        engine.resident_begin(&init);
        let stats: Vec<_> = (0..12).map(|_| engine.round_resident()).collect();
        let loads = engine.resident_end();
        assert_eq!(serial_stats, stats, "{mode:?}: per-round stats diverged");
        assert_eq!(serial_loads, loads, "{mode:?}: final loads diverged");
    }
}

#[test]
fn everyk_resident_rounds_collect_only_on_stats_rounds() {
    // The collect gate, counted where it runs: `EveryK(3)` must ship
    // owned values out on rounds 3, 6, 9 only — every other round moves
    // halo traffic alone, and the seed round alone ships owned values in.
    let g = topology::torus2d(6, 6); // n = 36
    let mut seq = StaticSequence::new(g);
    let mut engine = Engine::message_resident(
        DynamicContinuousDiffusion::new(&mut seq),
        PartitionSpec::Bfs { shards: 4 },
    )
    .with_stats_mode(StatsMode::EveryK(3));
    let init: Vec<f64> = (0..36).map(|i| ((i * 7 + 1) % 23) as f64).collect();
    engine.resident_begin(&init);
    for round in 1..=9u64 {
        let stats = engine.round_resident();
        let comm = engine.comm_metrics().expect("comm recorded per round");
        if round == 1 {
            assert_eq!(comm.owned_values_in, 36, "seed round ships owned slices");
        } else {
            assert_eq!(comm.owned_values_in, 0, "round {round}: owned values sent");
        }
        assert_eq!(comm.delta_values, 0, "no workload deltas were queued");
        if round.is_multiple_of(3) {
            assert!(stats.is_some(), "round {round} computes stats");
            assert_eq!(comm.collects, 1, "round {round}: stats round collects");
            // Round-start snapshot plus results: 2n values back.
            assert_eq!(comm.owned_values_out, 72, "round {round}");
        } else {
            assert!(stats.is_none(), "round {round} skips stats");
            assert_eq!(comm.collects, 0, "round {round}: unexpected collect");
            assert_eq!(comm.owned_values_out, 0, "round {round}");
        }
        let halo = engine.shard_metrics().expect("plan resolved").halo;
        assert_eq!(comm.values_sent, halo, "halo traffic is mode-independent");
    }
    let final_loads = engine.resident_end();
    assert_eq!(final_loads.len(), 36);
}

#[test]
fn resident_builtin_matches_serial_twin_with_transfer_accounting() {
    // `bursty-torus-resident` is the driven-workload regime on resident
    // workers: the trajectory must match `bursty-torus` (serial) and
    // `bursty-torus-message` (legacy) bit for bit, while the transfer
    // counters show the owned-in direction collapsed to the seed round
    // plus sparse deltas.
    let serial = Scenario::builtin("bursty-torus").unwrap().run().unwrap();
    let legacy = Scenario::builtin("bursty-torus-message")
        .unwrap()
        .run()
        .unwrap();
    let res = Scenario::builtin("bursty-torus-resident")
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(res.backend, "message");
    assert!(res.resident, "report records the resident setting");
    assert!(!legacy.resident);
    assert_eq!(res.rounds, serial.rounds);
    let bits = |r: &dlb_workloads::ScenarioReport| -> Vec<u64> {
        r.phi_trace.iter().map(|p| p.to_bits()).collect()
    };
    assert_eq!(bits(&serial), bits(&res), "Φ trace diverged from serial");
    assert_eq!(bits(&legacy), bits(&res), "Φ trace diverged from legacy");
    assert_eq!(serial.final_total.to_bits(), res.final_total.to_bits());

    let comm = res.comm.expect("resident run reports comm totals");
    let legacy_comm = legacy.comm.expect("legacy run reports comm totals");
    // Halo traffic is identical — residency changes coordinator
    // transfer, not the shard-to-shard exchange.
    assert_eq!(comm.values_sent, legacy_comm.values_sent);
    assert_eq!(comm.messages, legacy_comm.messages);
    // Legacy rounds re-ship every owned slice; the resident session
    // ships them exactly once (256-node torus, one static plan) and
    // routes sparse deltas afterwards.
    assert_eq!(legacy_comm.owned_values_in, 256 * legacy.rounds as u64);
    assert_eq!(comm.owned_values_in, 256);
    assert!(comm.delta_values > 0, "driven workload routes deltas");
    assert!(comm.collects > 0, "stats/read rounds collect");
    assert_eq!(legacy_comm.delta_values, 0);
    assert_eq!(legacy_comm.collects, 0);
}

#[test]
fn resident_sessions_reject_fault_arming() {
    // Recovery re-seeds workers from the coordinator's round-start
    // snapshot — which a resident session by design does not hold — so
    // both validation layers must refuse the combination.
    let resident_exec = ExecSpec::Message {
        partition: PartitionSpec::Bfs { shards: 8 },
        resident: true,
    };
    let faulty = Scenario::builtin("churn-shards-message").unwrap();
    let err = ScenarioRunner::new(faulty.clone())
        .with_exec(resident_exec)
        .run()
        .unwrap_err();
    assert!(err.contains("snapshot-based"), "{err}");
    let err = faulty.with_exec(resident_exec).validate().unwrap_err();
    assert!(err.contains("resident"), "{err}");
}

// ---------------------------------------------------------------------------
// Channel-layer property: the batched exchange, served purely from
// sender-local data, reconstructs exactly the halo segment that
// `ShardView::assemble` packs from the global vector (the local-gather ≡
// global-gather shape, applied to the wire protocol).
// ---------------------------------------------------------------------------

fn arb_graph() -> impl Strategy<Value = Graph> {
    (0u8..5, 6usize..40).prop_map(|(family, n)| match family {
        0 => topology::cycle(n),
        1 => topology::star(n),
        2 => topology::binary_tree(n),
        3 => topology::wheel(n.max(4)),
        _ => topology::grid2d(3, n / 3),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batched_exchange_reconstructs_the_assembled_halo(
        g in arb_graph(),
        shards in 1usize..12,
        strategy_sel in 0u8..2,
    ) {
        let partition = if strategy_sel == 1 {
            Partition::bfs(&g, shards)
        } else {
            Partition::range(g.n(), shards)
        };
        let plan = ShardPlan::build(&g, &partition);
        // Distinct value per node so any misdelivery is visible.
        let global: Vec<f64> = (0..g.n()).map(|i| (i * i + 7) as f64 / 3.0).collect();
        // Every shard's private store: the assemble() pack of its view —
        // senders must serve requests from their *owned* segment alone.
        let locals: Vec<Vec<f64>> = plan
            .views()
            .iter()
            .map(|v| {
                let mut out = Vec::new();
                v.assemble(&global, &mut out);
                out
            })
            .collect();
        for view in plan.views() {
            let expected = &locals[view.shard()][view.owned().len()..];
            let mut received: Vec<Option<f64>> = vec![None; view.halo().len()];
            for (src, ids) in view.halo_groups() {
                let src_view = &plan.views()[src];
                for &v in &ids {
                    // Sender-side: the value comes out of src's owned
                    // segment, addressed by its own local index.
                    let row = src_view
                        .owned()
                        .binary_search(&v)
                        .expect("sender owns every value it posts");
                    let value = locals[src][row];
                    // Receiver-side: scattered into the halo slot.
                    let slot = view.halo().binary_search(&v).expect("halo id indexed");
                    prop_assert!(
                        received[slot].is_none(),
                        "halo value delivered twice"
                    );
                    received[slot] = Some(value);
                }
            }
            for (slot, value) in received.iter().enumerate() {
                let value = value.expect("halo slot never delivered");
                prop_assert_eq!(
                    value.to_bits(),
                    expected[slot].to_bits(),
                    "halo slot {} diverged from the global gather",
                    slot
                );
            }
        }
    }
}
