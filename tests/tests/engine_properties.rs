//! Engine-level property tests: for **every** `Protocol` implementation in
//! the workspace, all five executor backends — serial, pool, sharded,
//! message-passing, and process (both range and BFS partitions, including
//! shard counts exceeding `n`) — must produce bit-identical load vectors
//! **and per-round statistics** on arbitrary graphs, initial loads, and
//! thread counts — the structural guarantee the unified engine owes the
//! paper's determinism story. For the message backend this additionally pins that
//! shard-isolated workers exchanging only batched halo messages (or the
//! full exchange, for non-neighbourhood-local protocols) reconstruct the
//! shared-memory rounds exactly.
//!
//! Randomized protocols participate too: their RNG lives inside the
//! protocol and `begin_round` runs before the gather fans out, so equal
//! seeds mean equal rounds regardless of executor.
//!
//! The kernel dispatch layer adds a third axis: every [`KernelKind`]
//! (scalar reference, unrolled, simd) must match the serial **scalar**
//! gather bit-for-bit on every backend — the degree-specialized kernels
//! are a speed story only, never a results story.

use dlb_baselines::{
    ChebyshevContinuous, FirstOrderContinuous, FirstOrderDiscrete, MatchingExchangeContinuous,
    MatchingExchangeDiscrete, MatchingKind, SecondOrderContinuous, SequentialComparator,
};
use dlb_core::continuous::{ContinuousDiffusion, GeneralizedDiffusion};
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::{Backend, Engine, Protocol};
use dlb_core::heterogeneous::{HeterogeneousDiffusion, HeterogeneousDiscreteDiffusion};
use dlb_core::random_partner::{RandomPartnerContinuous, RandomPartnerDiscrete};
use dlb_core::KernelKind;
use dlb_graphs::PartitionSpec;
use dlb_graphs::{topology, Graph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (0u8..5, 6usize..40).prop_map(|(family, n)| match family {
        0 => topology::cycle(n),
        1 => topology::star(n),
        2 => topology::binary_tree(n),
        3 => topology::wheel(n.max(4)),
        _ => topology::grid2d(3, n / 3),
    })
}

fn graph_and_loads() -> impl Strategy<Value = (Graph, Vec<f64>, usize)> {
    arb_graph().prop_flat_map(|g| {
        let n = g.n();
        (
            Just(g),
            proptest::collection::vec(0.0f64..10_000.0, n),
            2usize..9,
        )
    })
}

fn graph_and_tokens() -> impl Strategy<Value = (Graph, Vec<i64>, usize)> {
    arb_graph().prop_flat_map(|g| {
        let n = g.n();
        (
            Just(g),
            proptest::collection::vec(0i64..1_000_000, n),
            2usize..9,
        )
    })
}

/// Runs `rounds` rounds on one engine, collecting the per-round
/// statistics alongside the final loads.
fn run_collecting<P: Protocol>(
    mut engine: Engine<P>,
    init: &[P::Load],
    rounds: usize,
) -> (Vec<P::Load>, Vec<Option<P::Stats>>) {
    let mut loads = init.to_vec();
    let stats = (0..rounds).map(|_| engine.round(&mut loads)).collect();
    (loads, stats)
}

/// Same collection through the message backend's resident-session API:
/// workers keep their owned loads across rounds and the coordinator only
/// collects them when the stats mode (or the final `resident_end`) needs
/// them.
fn run_collecting_resident<P: Protocol>(
    mut engine: Engine<P>,
    init: &[P::Load],
    rounds: usize,
) -> (Vec<P::Load>, Vec<Option<P::Stats>>) {
    engine.resident_begin(init);
    let stats = (0..rounds).map(|_| engine.round_resident()).collect();
    let loads = engine.resident_end();
    (loads, stats)
}

/// Runs `rounds` rounds on every backend — serial, pool, sharded/range,
/// sharded/BFS (with one shard count near the thread count and one
/// exceeding `n`), and the message backend (shard-isolated workers over
/// channels, both partition strategies, again incl. shards > `n`) — from
/// the same state and asserts bitwise equality of the final vectors *and*
/// of every round's statistics. The reference is the serial engine with
/// the **scalar** kernel; the backend sweep then runs at the default
/// kernel, and a second sweep crosses every [`KernelKind`] with one
/// backend of each executor family.
fn assert_bit_identical<P, M>(make: M, init: &[P::Load], threads: usize, rounds: usize)
where
    P: Protocol + Sync,
    P::Stats: PartialEq + std::fmt::Debug,
    M: Fn() -> P,
{
    let (serial, serial_stats) = run_collecting(
        Engine::serial(make()).with_kernel(KernelKind::Scalar),
        init,
        rounds,
    );
    let name = make().name();

    let shard_counts = [threads + 1, init.len() + 3]; // incl. shards > n
    let mut backends = vec![Backend::Pool { threads }];
    for shards in shard_counts {
        backends.push(Backend::Sharded {
            partition: PartitionSpec::Range { shards },
            threads,
        });
        backends.push(Backend::Sharded {
            partition: PartitionSpec::Bfs { shards },
            threads,
        });
    }
    backends.push(Backend::Message {
        partition: PartitionSpec::Range {
            shards: threads + 1,
        },
        resident: false,
    });
    backends.push(Backend::Message {
        partition: PartitionSpec::Bfs {
            shards: threads + 1,
        },
        resident: false,
    });
    backends.push(Backend::Message {
        partition: PartitionSpec::Range {
            shards: init.len() + 3,
        },
        resident: false,
    });
    for backend in backends {
        let (loads, stats) = run_collecting(Engine::with_backend(make(), backend), init, rounds);
        assert_eq!(
            serial, loads,
            "{name}: serial and {backend:?} loads diverged at {threads} threads"
        );
        assert_eq!(
            serial_stats, stats,
            "{name}: serial and {backend:?} statistics diverged at {threads} threads"
        );
    }

    // The resident-session axis: shard-resident rounds (workers keep
    // their owned loads, the coordinator collects only when the stats
    // mode needs them) must reproduce the identical loads and stats.
    for partition in [
        PartitionSpec::Range {
            shards: threads + 1,
        },
        PartitionSpec::Bfs {
            shards: threads + 1,
        },
        PartitionSpec::Range {
            shards: init.len() + 3,
        },
    ] {
        let backend = Backend::Message {
            partition,
            resident: true,
        };
        let (loads, stats) =
            run_collecting_resident(Engine::with_backend(make(), backend), init, rounds);
        assert_eq!(
            serial, loads,
            "{name}: serial and resident {backend:?} loads diverged at {threads} threads"
        );
        assert_eq!(
            serial_stats, stats,
            "{name}: serial and resident {backend:?} statistics diverged at {threads} threads"
        );
    }

    // The kernel axis: every flavour × one backend per executor family
    // must reproduce the scalar serial reference bit-for-bit.
    let kernel_backends = [
        Backend::Serial,
        Backend::Pool { threads },
        Backend::Sharded {
            partition: PartitionSpec::Range {
                shards: threads + 1,
            },
            threads,
        },
        Backend::Message {
            partition: PartitionSpec::Range {
                shards: threads + 1,
            },
            resident: false,
        },
    ];
    for kind in KernelKind::ALL {
        for backend in kernel_backends {
            let engine = Engine::with_backend(make(), backend).with_kernel(kind);
            let (loads, stats) = run_collecting(engine, init, rounds);
            assert_eq!(
                serial,
                loads,
                "{name}: scalar serial and {backend:?} loads diverged with the {} kernel",
                kind.name()
            );
            assert_eq!(
                serial_stats,
                stats,
                "{name}: scalar serial and {backend:?} statistics diverged with the {} kernel",
                kind.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alg1_continuous_serial_parallel_identical((g, loads, threads) in graph_and_loads()) {
        assert_bit_identical(|| ContinuousDiffusion::new(&g), &loads, threads, 6);
    }

    #[test]
    fn alg1_generalized_serial_parallel_identical((g, loads, threads) in graph_and_loads()) {
        assert_bit_identical(|| GeneralizedDiffusion::new(&g, 6.0), &loads, threads, 6);
    }

    #[test]
    fn alg1_discrete_serial_parallel_identical((g, tokens, threads) in graph_and_tokens()) {
        assert_bit_identical(|| DiscreteDiffusion::new(&g), &tokens, threads, 6);
    }

    #[test]
    fn heterogeneous_serial_parallel_identical((g, loads, threads) in graph_and_loads()) {
        let caps: Vec<f64> = (0..g.n()).map(|i| 0.5 + (i % 5) as f64).collect();
        assert_bit_identical(|| HeterogeneousDiffusion::new(&g, caps.clone()), &loads, threads, 6);
    }

    #[test]
    fn heterogeneous_discrete_serial_parallel_identical(
        (g, tokens, threads) in graph_and_tokens()
    ) {
        let caps: Vec<f64> = (0..g.n()).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
        assert_bit_identical(
            || HeterogeneousDiscreteDiffusion::new(&g, caps.clone()),
            &tokens,
            threads,
            6,
        );
    }

    #[test]
    fn random_partner_continuous_serial_parallel_identical(
        (g, loads, threads) in graph_and_loads(),
        seed in 0u64..1_000_000,
    ) {
        let n = g.n(); // graph only provides the node count here
        assert_bit_identical(|| RandomPartnerContinuous::new(n, seed), &loads, threads, 6);
    }

    #[test]
    fn random_partner_discrete_serial_parallel_identical(
        (g, tokens, threads) in graph_and_tokens(),
        seed in 0u64..1_000_000,
    ) {
        let n = g.n();
        assert_bit_identical(|| RandomPartnerDiscrete::new(n, seed), &tokens, threads, 6);
    }

    #[test]
    fn fos_serial_parallel_identical((g, loads, threads) in graph_and_loads()) {
        assert_bit_identical(|| FirstOrderContinuous::new(&g), &loads, threads, 6);
    }

    #[test]
    fn fos_discrete_serial_parallel_identical((g, tokens, threads) in graph_and_tokens()) {
        assert_bit_identical(|| FirstOrderDiscrete::new(&g), &tokens, threads, 6);
    }

    #[test]
    fn sos_serial_parallel_identical((g, loads, threads) in graph_and_loads()) {
        assert_bit_identical(|| SecondOrderContinuous::with_beta(&g, 1.7), &loads, threads, 6);
    }

    #[test]
    fn chebyshev_serial_parallel_identical((g, loads, threads) in graph_and_loads()) {
        assert_bit_identical(|| ChebyshevContinuous::with_gamma(&g, 0.9), &loads, threads, 6);
    }

    #[test]
    fn matching_exchange_serial_parallel_identical(
        (g, loads, threads) in graph_and_loads(),
        seed in 0u64..1_000_000,
    ) {
        assert_bit_identical(
            || MatchingExchangeContinuous::new(&g, MatchingKind::Proposal, seed),
            &loads,
            threads,
            6,
        );
    }

    #[test]
    fn matching_exchange_discrete_serial_parallel_identical(
        (g, tokens, threads) in graph_and_tokens(),
        seed in 0u64..1_000_000,
    ) {
        assert_bit_identical(
            || MatchingExchangeDiscrete::new(&g, MatchingKind::GreedyMaximal, seed),
            &tokens,
            threads,
            6,
        );
    }

    #[test]
    fn greedy_sequential_serial_parallel_identical(
        (g, loads, threads) in graph_and_loads(),
        seed in 0u64..1_000_000,
    ) {
        // The whole round materializes in begin_round (the chain replay IS
        // the protocol); the gather just reads the result buffer, so every
        // backend must agree trivially — worth pinning precisely because
        // the kernel's data dependence is unlike every other protocol's.
        use dlb_core::seq::AdaptiveOrder;
        assert_bit_identical(
            || SequentialComparator::new(&g, AdaptiveOrder::Random, seed),
            &loads,
            threads,
            4,
        );
    }

    #[test]
    fn conservation_exact_for_discrete_protocols((g, tokens, threads) in graph_and_tokens()) {
        let total: i128 = tokens.iter().map(|&t| t as i128).sum();
        let mut loads = tokens.clone();
        let mut engine = Engine::parallel(DiscreteDiffusion::new(&g), threads);
        for _ in 0..10 {
            engine.round(&mut loads);
        }
        let after: i128 = loads.iter().map(|&t| t as i128).sum();
        prop_assert_eq!(total, after, "token conservation violated");
    }
}

// ---------------------------------------------------------------------------
// Process backend: every protocol, deterministic
// ---------------------------------------------------------------------------
//
// The process backend spawns one OS worker per shard, so it runs outside
// the proptest sweeps (24 cases × a backend list would fork hundreds of
// process fleets). One deterministic fixture per protocol is the right
// trade: the wire codec is itself property-tested in `dlb-wire`, and the
// serialization path these tests pin is value-shape-independent — every
// owned load and halo value crosses the socket as a raw bit pattern in
// both round modes, so bit-identity on one trajectory proves the codec
// preserves bits on all of them.

/// Serial (scalar kernel) vs `Backend::Process` over Unix sockets: final
/// loads AND every round's statistics must be bitwise identical.
fn assert_process_identical<P, M>(make: M, init: &[P::Load], rounds: usize)
where
    P: Protocol + Sync,
    P::Stats: PartialEq + std::fmt::Debug,
    M: Fn() -> P,
{
    let (serial, serial_stats) = run_collecting(
        Engine::serial(make()).with_kernel(KernelKind::Scalar),
        init,
        rounds,
    );
    let name = make().name();
    for partition in [
        PartitionSpec::Range { shards: 3 },
        PartitionSpec::Bfs { shards: 3 },
    ] {
        let backend = Backend::Process {
            partition,
            transport: dlb_core::Transport::Unix,
        };
        let (loads, stats) = run_collecting(Engine::with_backend(make(), backend), init, rounds);
        assert_eq!(
            serial, loads,
            "{name}: serial and {backend:?} loads diverged"
        );
        assert_eq!(
            serial_stats, stats,
            "{name}: serial and {backend:?} statistics diverged"
        );
    }
}

/// Deterministic fixture shared by the process sweep: a 2-D grid (mixed
/// degrees exercise the kernel plan) and loads with bit-rich mantissas.
fn process_fixture() -> (Graph, Vec<f64>, Vec<i64>) {
    let g = topology::grid2d(4, 5);
    let loads: Vec<f64> = (0..g.n()).map(|i| 1.0 + (i as f64) * 13.7).collect();
    let tokens: Vec<i64> = (0..g.n()).map(|i| (i as i64 * 977) % 4021).collect();
    (g, loads, tokens)
}

#[test]
fn process_backend_bit_identical_all_protocols() {
    let (g, loads, tokens) = process_fixture();
    let n = g.n();
    let caps: Vec<f64> = (0..n).map(|i| 0.5 + (i % 5) as f64).collect();
    let icaps: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();

    assert_process_identical(|| ContinuousDiffusion::new(&g), &loads, 4);
    assert_process_identical(|| GeneralizedDiffusion::new(&g, 6.0), &loads, 4);
    assert_process_identical(|| DiscreteDiffusion::new(&g), &tokens, 4);
    assert_process_identical(|| HeterogeneousDiffusion::new(&g, caps.clone()), &loads, 4);
    assert_process_identical(
        || HeterogeneousDiscreteDiffusion::new(&g, icaps.clone()),
        &tokens,
        4,
    );
    assert_process_identical(|| RandomPartnerContinuous::new(n, 42), &loads, 4);
    assert_process_identical(|| RandomPartnerDiscrete::new(n, 42), &tokens, 4);
    assert_process_identical(|| FirstOrderContinuous::new(&g), &loads, 4);
    assert_process_identical(|| FirstOrderDiscrete::new(&g), &tokens, 4);
    assert_process_identical(|| SecondOrderContinuous::with_beta(&g, 1.7), &loads, 4);
    assert_process_identical(|| ChebyshevContinuous::with_gamma(&g, 0.9), &loads, 4);
    assert_process_identical(
        || MatchingExchangeContinuous::new(&g, MatchingKind::Proposal, 42),
        &loads,
        4,
    );
    assert_process_identical(
        || MatchingExchangeContinuous::new(&g, MatchingKind::GreedyMaximal, 42),
        &loads,
        4,
    );
    assert_process_identical(
        || MatchingExchangeDiscrete::new(&g, MatchingKind::Proposal, 42),
        &tokens,
        4,
    );
    assert_process_identical(
        || MatchingExchangeDiscrete::new(&g, MatchingKind::GreedyMaximal, 42),
        &tokens,
        4,
    );
    assert_process_identical(
        || SequentialComparator::new(&g, dlb_core::seq::AdaptiveOrder::Random, 42),
        &loads,
        4,
    );
}

/// Shards exceeding `n` (empty shards on the wire) and every kernel
/// flavour on the worker side still reproduce the serial trajectory.
#[test]
fn process_backend_edge_shapes_bit_identical() {
    let (g, loads, _) = process_fixture();
    let (serial, serial_stats) = run_collecting(
        Engine::serial(ContinuousDiffusion::new(&g)).with_kernel(KernelKind::Scalar),
        &loads,
        4,
    );
    let backend = Backend::Process {
        partition: PartitionSpec::Range { shards: g.n() + 3 },
        transport: dlb_core::Transport::Unix,
    };
    let (got, got_stats) = run_collecting(
        Engine::with_backend(ContinuousDiffusion::new(&g), backend),
        &loads,
        4,
    );
    assert_eq!(serial, got, "shards > n over the wire diverged");
    assert_eq!(serial_stats, got_stats);

    for kind in KernelKind::ALL {
        let backend = Backend::Process {
            partition: PartitionSpec::Bfs { shards: 3 },
            transport: dlb_core::Transport::Unix,
        };
        let engine = Engine::with_backend(ContinuousDiffusion::new(&g), backend).with_kernel(kind);
        let (got, got_stats) = run_collecting(engine, &loads, 4);
        assert_eq!(
            serial,
            got,
            "process backend with the {} kernel diverged",
            kind.name()
        );
        assert_eq!(serial_stats, got_stats);
    }
}
