//! Lazy-statistics and ping-pong-buffer invariants.
//!
//! The engine's [`StatsMode`] must be a pure observer: **final loads and
//! `RunOutcome.rounds` are bit-identical across `Full`, `EveryK(k)`,
//! `PhiOnly` and `Off`**, and wherever statistics *are* computed they must
//! equal `Full`'s values exactly. The zero-copy double-buffered round must
//! reproduce the pre-refactor copy-the-snapshot semantics for any round
//! count — odd or even, so both ping-pong parities are exercised — which
//! this suite checks against an explicit reference loop and against the
//! pre-refactor golden fixtures.

mod golden {
    pub mod fixtures_data;
}

use dlb_baselines::{FirstOrderContinuous, SecondOrderContinuous, SequentialComparator};
use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::{Engine, IntoEngine, Protocol, StatsMode};
use dlb_core::heterogeneous::HeterogeneousDiffusion;
use dlb_core::model::{DiscreteRoundStats, RoundStats};
use dlb_core::random_partner::RandomPartnerContinuous;
use dlb_core::runner::{run_continuous, run_discrete};
use dlb_core::seq::AdaptiveOrder;
use dlb_graphs::{topology, Graph};
use golden::fixtures_data::FIXTURES;
use proptest::prelude::*;

const MODES: [StatsMode; 5] = [
    StatsMode::EveryK(1),
    StatsMode::EveryK(3),
    StatsMode::EveryK(7),
    StatsMode::PhiOnly,
    StatsMode::Off,
];

fn arb_graph() -> impl Strategy<Value = Graph> {
    (0u8..5, 6usize..40).prop_map(|(family, n)| match family {
        0 => topology::cycle(n),
        1 => topology::star(n),
        2 => topology::binary_tree(n),
        3 => topology::wheel(n.max(4)),
        _ => topology::grid2d(3, n / 3),
    })
}

fn graph_and_loads() -> impl Strategy<Value = (Graph, Vec<f64>, usize)> {
    arb_graph().prop_flat_map(|g| {
        let n = g.n();
        (
            Just(g),
            proptest::collection::vec(0.0f64..10_000.0, n),
            2usize..9,
        )
    })
}

/// Drives `make()` under `Full` and under `mode` for `rounds` rounds
/// (serial and parallel) and asserts: bit-identical loads after every
/// round, and stats — where computed — exactly equal to `Full`'s.
fn assert_mode_transparent<P, M>(make: M, init: &[f64], mode: StatsMode, threads: usize)
where
    P: Protocol<Load = f64, Stats = RoundStats> + Sync,
    M: Fn() -> P,
{
    let rounds = 10;
    let mut full_engine = Engine::serial(make());
    let mut lazy_engine = Engine::serial(make()).with_stats_mode(mode);
    let mut par_engine = Engine::parallel(make(), threads).with_stats_mode(mode);
    let mut full = init.to_vec();
    let mut lazy = init.to_vec();
    let mut par = init.to_vec();
    for round in 1..=rounds {
        let fs = full_engine.round(&mut full).expect("Full computes stats");
        let ls = lazy_engine.round(&mut lazy);
        let ps = par_engine.round(&mut par);
        assert_eq!(full, lazy, "{mode:?}: loads diverged at round {round}");
        assert_eq!(
            full, par,
            "{mode:?}: parallel loads diverged at round {round}"
        );
        for (label, stats) in [("serial", &ls), ("parallel", &ps)] {
            if let Some(s) = stats {
                assert_eq!(
                    s.phi_before.to_bits(),
                    fs.phi_before.to_bits(),
                    "{mode:?}/{label}: phi_before at round {round}"
                );
                assert_eq!(
                    s.phi_after.to_bits(),
                    fs.phi_after.to_bits(),
                    "{mode:?}/{label}: phi_after at round {round}"
                );
                if matches!(mode, StatsMode::PhiOnly) {
                    assert_eq!(s.active_edges, 0, "{mode:?}: tally must be zeroed");
                    assert_eq!(s.total_flow, 0.0);
                    assert_eq!(s.max_flow, 0.0);
                } else {
                    assert_eq!(s.active_edges, fs.active_edges, "{mode:?}/{label}");
                    assert_eq!(s.total_flow.to_bits(), fs.total_flow.to_bits());
                    assert_eq!(s.max_flow.to_bits(), fs.max_flow.to_bits());
                }
            }
        }
        // EveryK computes stats exactly on multiples of k.
        if let StatsMode::EveryK(k) = mode {
            assert_eq!(ls.is_some(), round % k == 0, "{mode:?} schedule");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn alg1_stats_modes_transparent((g, loads, threads) in graph_and_loads()) {
        for mode in MODES {
            assert_mode_transparent(|| ContinuousDiffusion::new(&g), &loads, mode, threads);
        }
    }

    #[test]
    fn random_partner_stats_modes_transparent(
        (g, loads, threads) in graph_and_loads(),
        seed in 0u64..1_000_000,
    ) {
        let n = g.n();
        for mode in MODES {
            assert_mode_transparent(|| RandomPartnerContinuous::new(n, seed), &loads, mode, threads);
        }
    }

    #[test]
    fn sos_stats_modes_transparent((g, loads, threads) in graph_and_loads()) {
        // Second-order history advances in `finish_round`; skipping stats
        // must not skip the history.
        for mode in MODES {
            assert_mode_transparent(
                || SecondOrderContinuous::with_beta(&g, 1.6),
                &loads,
                mode,
                threads,
            );
        }
    }

    #[test]
    fn fos_stats_modes_transparent((g, loads, threads) in graph_and_loads()) {
        for mode in MODES {
            assert_mode_transparent(|| FirstOrderContinuous::new(&g), &loads, mode, threads);
        }
    }
}

/// The sequential comparator materializes its round in `begin_round`;
/// its statistics must still be lazy: equal to `Full`'s where computed,
/// and a zeroed tally under `PhiOnly`.
#[test]
fn sequential_comparator_stats_modes_transparent() {
    let g = topology::torus2d(5, 5);
    let init: Vec<f64> = (0..25).map(|i| ((i * 13 + 3) % 41) as f64).collect();
    let rounds = 9;

    let mut full_engine =
        SequentialComparator::new(&g, AdaptiveOrder::RoundStartWeight, 7).engine();
    let mut full = init.clone();
    let full_stats: Vec<RoundStats> = (0..rounds)
        .map(|_| full_engine.round(&mut full).expect("full stats"))
        .collect();
    assert!(full_stats.iter().any(|s| s.active_edges > 0));

    for mode in MODES {
        let mut engine = SequentialComparator::new(&g, AdaptiveOrder::RoundStartWeight, 7)
            .engine()
            .with_stats_mode(mode);
        let mut loads = init.clone();
        for (round, fs) in full_stats.iter().enumerate() {
            if let Some(s) = engine.round(&mut loads) {
                assert_eq!(s.phi_before.to_bits(), fs.phi_before.to_bits(), "{mode:?}");
                assert_eq!(s.phi_after.to_bits(), fs.phi_after.to_bits(), "{mode:?}");
                if matches!(mode, StatsMode::PhiOnly) {
                    assert_eq!(s.active_edges, 0, "{mode:?}: tally must be zeroed");
                    assert_eq!(s.total_flow, 0.0);
                } else {
                    assert_eq!(&s, fs, "{mode:?} at round {round}");
                }
            }
        }
        assert_eq!(full, loads, "{mode:?}: loads diverged");
    }
}

/// `run_continuous` outcomes (rounds, convergence, final Φ, trace) are
/// independent of the stats mode — including for the capacity-weighted
/// potential, whose on-demand fallback must match the weighted stats.
#[test]
fn convergence_outcome_mode_independent() {
    let g = topology::torus2d(6, 6);
    let run = |mode: StatsMode| {
        let mut loads = vec![0.0; 36];
        loads[0] = 360.0;
        let mut b = ContinuousDiffusion::new(&g).engine().with_stats_mode(mode);
        run_continuous(&mut b, &mut loads, 1e-2, 100_000, true)
    };
    let full = run(StatsMode::Full);
    assert!(full.converged);
    for mode in MODES {
        let lazy = run(mode);
        assert_eq!(full.rounds, lazy.rounds, "{mode:?}");
        assert_eq!(full.converged, lazy.converged, "{mode:?}");
        assert_eq!(full.final_phi.to_bits(), lazy.final_phi.to_bits());
        let full_bits: Vec<u64> = full.trace.iter().map(|p| p.to_bits()).collect();
        let lazy_bits: Vec<u64> = lazy.trace.iter().map(|p| p.to_bits()).collect();
        assert_eq!(full_bits, lazy_bits, "{mode:?}: trace diverged");
    }
}

#[test]
fn heterogeneous_convergence_outcome_mode_independent() {
    // The weighted-potential protocol overrides `potential_of`; a wrong
    // fallback would silently change convergence decisions under lazy
    // modes.
    let g = topology::grid2d(5, 5);
    let caps: Vec<f64> = (0..25).map(|i| 0.5 + (i % 4) as f64).collect();
    let run = |mode: StatsMode| {
        let mut loads = vec![0.0; 25];
        loads[0] = 500.0;
        let mut b = HeterogeneousDiffusion::new(&g, caps.clone())
            .engine()
            .with_stats_mode(mode);
        run_continuous(&mut b, &mut loads, 1e-2, 200_000, false)
    };
    let full = run(StatsMode::Full);
    assert!(full.converged);
    for mode in MODES {
        let lazy = run(mode);
        assert_eq!(full.rounds, lazy.rounds, "{mode:?}");
        assert_eq!(full.final_phi.to_bits(), lazy.final_phi.to_bits());
    }
}

#[test]
fn discrete_stats_modes_transparent() {
    let g = topology::hypercube(5);
    let init: Vec<i64> = (0..32).map(|i| ((i * 997 + 11) % 4096) as i64).collect();
    let rounds = 12;

    let mut full_engine = DiscreteDiffusion::new(&g).engine();
    let mut full = init.clone();
    let full_stats: Vec<DiscreteRoundStats> = (0..rounds)
        .map(|_| full_engine.round(&mut full).expect("full stats"))
        .collect();

    for mode in MODES {
        let mut engine = DiscreteDiffusion::new(&g)
            .engine_parallel(3)
            .with_stats_mode(mode);
        let mut loads = init.clone();
        for (round, fs) in full_stats.iter().enumerate() {
            if let Some(s) = engine.round(&mut loads) {
                assert_eq!(s.phi_hat_before, fs.phi_hat_before, "{mode:?}");
                assert_eq!(s.phi_hat_after, fs.phi_hat_after, "{mode:?}");
                if !matches!(mode, StatsMode::PhiOnly) {
                    assert_eq!(&s, fs, "{mode:?} at round {round}");
                }
            }
        }
        assert_eq!(full, loads, "{mode:?}: discrete loads diverged");
    }

    let run = |mode: StatsMode| {
        let mut loads = init.clone();
        let mut b = DiscreteDiffusion::new(&g).engine().with_stats_mode(mode);
        run_discrete(&mut b, &mut loads, 200_000, 10_000, true)
    };
    let full_out = run(StatsMode::Full);
    for mode in MODES {
        let lazy = run(mode);
        assert_eq!(full_out.rounds, lazy.rounds, "{mode:?}");
        assert_eq!(full_out.final_phi_hat, lazy.final_phi_hat, "{mode:?}");
        assert_eq!(full_out.trace, lazy.trace, "{mode:?}");
    }
}

/// The pre-refactor round semantics, verbatim: copy an explicit snapshot,
/// gather into the load vector with the on-the-fly reference kernel.
fn reference_rounds_continuous(g: &Graph, loads: &mut [f64], rounds: usize) {
    let mut snapshot = vec![0.0f64; loads.len()];
    for _ in 0..rounds {
        snapshot.copy_from_slice(loads);
        for v in 0..g.n() as u32 {
            loads[v as usize] = dlb_core::continuous::node_new_load(g, &snapshot, v);
        }
    }
}

fn reference_rounds_discrete(g: &Graph, loads: &mut [i64], rounds: usize) {
    let mut snapshot = vec![0i64; loads.len()];
    for _ in 0..rounds {
        snapshot.copy_from_slice(loads);
        for v in 0..g.n() as u32 {
            loads[v as usize] = dlb_core::discrete::node_new_load(g, &snapshot, v);
        }
    }
}

/// Ping-pong buffers must hand back the correct vector after *odd and
/// even* round counts (the caller's `Vec` and the engine's back buffer
/// swap roles every round), matching the pre-refactor golden fixtures.
#[test]
fn ping_pong_matches_golden_fixtures_after_odd_and_even_round_counts() {
    for &(name, edges, n, init_bits, final_bits, init_tokens, final_tokens) in FIXTURES {
        let g = Graph::from_edges(n, edges.iter().copied()).expect("fixture graph");

        for rounds in [11usize, 12, 1, 2] {
            // Continuous, serial + parallel, against the reference loop
            // (and at 12 rounds against the recorded golden bits).
            let init: Vec<f64> = init_bits.iter().map(|&b| f64::from_bits(b)).collect();
            let mut want = init.clone();
            reference_rounds_continuous(&g, &mut want, rounds);

            let mut serial = init.clone();
            let mut engine = ContinuousDiffusion::new(&g).engine();
            engine.rounds(&mut serial, rounds);
            let got: Vec<u64> = serial.iter().map(|l| l.to_bits()).collect();
            let want_bits: Vec<u64> = want.iter().map(|l| l.to_bits()).collect();
            assert_eq!(got, want_bits, "{name}: continuous after {rounds} rounds");
            if rounds == 12 {
                assert_eq!(got.as_slice(), final_bits, "{name}: golden fixture");
            }

            let mut par = init;
            let mut engine = ContinuousDiffusion::new(&g).engine_parallel(3);
            engine.rounds(&mut par, rounds);
            let got: Vec<u64> = par.iter().map(|l| l.to_bits()).collect();
            assert_eq!(got, want_bits, "{name}: parallel after {rounds} rounds");

            // Discrete twin.
            let mut want = init_tokens.to_vec();
            reference_rounds_discrete(&g, &mut want, rounds);
            let mut tokens = init_tokens.to_vec();
            let mut engine = DiscreteDiffusion::new(&g).engine();
            engine.rounds(&mut tokens, rounds);
            assert_eq!(tokens, want, "{name}: discrete after {rounds} rounds");
            if rounds == 12 {
                assert_eq!(tokens.as_slice(), final_tokens, "{name}: golden tokens");
            }
        }
    }
}

/// The swap really is zero-copy: the caller's allocation and the engine's
/// back buffer alternate, so after two rounds the original allocation is
/// back in the caller's hands.
#[test]
fn ping_pong_alternates_allocations() {
    let g = topology::cycle(32);
    let mut engine = ContinuousDiffusion::new(&g).engine();
    let mut loads: Vec<f64> = (0..32).map(|i| i as f64).collect();
    let original = loads.as_ptr();
    engine.round(&mut loads);
    let swapped = loads.as_ptr();
    assert_ne!(original, swapped, "round must swap buffers, not copy");
    engine.round(&mut loads);
    assert_eq!(loads.as_ptr(), original, "two rounds return the allocation");
    engine.round(&mut loads);
    assert_eq!(loads.as_ptr(), swapped, "parity continues");
}
