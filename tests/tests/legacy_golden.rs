//! Legacy-equivalence golden tests: the unified engine must reproduce the
//! **exact** final loads of the deleted pre-engine executors.
//!
//! The fixtures in `golden/fixtures_data.rs` were captured by running the
//! seed tree's `ContinuousDiffusion`/`DiscreteDiffusion` serial executors
//! (hand-rolled per-protocol loops with on-the-fly degree lookups) for 12
//! rounds on deterministic random graphs. The engine's precomputed-divisor
//! kernels perform bit-for-bit the same operations, so equality is exact:
//! `f64` results are compared by bit pattern, token counts as integers.

mod golden {
    pub mod fixtures_data;
}

use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_graphs::Graph;
use golden::fixtures_data::FIXTURES;

const ROUNDS: usize = 12;

fn rebuild(edges: &[(u32, u32)], n: usize) -> Graph {
    Graph::from_edges(n, edges.iter().copied()).expect("fixture graph is valid")
}

#[test]
fn continuous_engine_reproduces_legacy_executor_bitwise() {
    for &(name, edges, n, init_bits, final_bits, _, _) in FIXTURES {
        let g = rebuild(edges, n);
        let mut loads: Vec<f64> = init_bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut engine = ContinuousDiffusion::new(&g).engine();
        for _ in 0..ROUNDS {
            engine.round(&mut loads);
        }
        for (i, (&got, &want)) in loads.iter().zip(final_bits).enumerate() {
            assert_eq!(
                got.to_bits(),
                want,
                "{name}: node {i}: engine {got:?} ({:#018x}) != legacy {:?} ({want:#018x})",
                got.to_bits(),
                f64::from_bits(want),
            );
        }
    }
}

#[test]
fn discrete_engine_reproduces_legacy_executor_exactly() {
    for &(name, edges, n, _, _, init_tokens, final_tokens) in FIXTURES {
        let g = rebuild(edges, n);
        let mut loads: Vec<i64> = init_tokens.to_vec();
        let mut engine = DiscreteDiffusion::new(&g).engine();
        for _ in 0..ROUNDS {
            engine.round(&mut loads);
        }
        assert_eq!(
            loads.as_slice(),
            final_tokens,
            "{name}: discrete tokens deviate"
        );
    }
}

#[test]
fn parallel_engine_reproduces_legacy_executor_bitwise() {
    // The legacy parallel executors were bit-identical to the legacy
    // serial ones; the engine's parallel executor must therefore hit the
    // same golden bits.
    for &(name, edges, n, init_bits, final_bits, _, _) in FIXTURES {
        let g = rebuild(edges, n);
        let mut loads: Vec<f64> = init_bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut engine = ContinuousDiffusion::new(&g).engine_parallel(3);
        for _ in 0..ROUNDS {
            engine.round(&mut loads);
        }
        let got: Vec<u64> = loads.iter().map(|l| l.to_bits()).collect();
        assert_eq!(
            got.as_slice(),
            final_bits,
            "{name}: parallel engine deviates"
        );
    }
}
