//! End-to-end theorem validation on the full small-graph zoo: every
//! convergence bound in the paper must hold on every connected instance.

use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::IntoEngine;
use dlb_core::runner::{rounds_to_epsilon, run_discrete};
use dlb_core::{bounds, potential};
use dlb_spectral::eigen::laplacian_lambda2;
use dlb_tests::standard_small_graphs;

#[test]
fn theorem4_bound_holds_on_all_graphs() {
    let eps = 1e-3;
    for (name, g) in standard_small_graphs() {
        let n = g.n();
        let lambda2 = laplacian_lambda2(&g).expect("λ₂");
        let budget = bounds::theorem4_rounds(g.max_degree(), lambda2, eps).ceil() as usize;
        let mut loads = vec![0.0; n];
        loads[0] = 1000.0 * n as f64;
        let mut exec = ContinuousDiffusion::new(&g).engine();
        let out = rounds_to_epsilon(&mut exec, &mut loads, eps, budget);
        assert!(
            out.converged,
            "{name}: did not reach ε·Φ₀ within the Theorem 4 budget of {budget} rounds"
        );
    }
}

#[test]
fn theorem4_per_round_drop_factor_holds() {
    for (name, g) in standard_small_graphs() {
        let n = g.n();
        let lambda2 = laplacian_lambda2(&g).expect("λ₂");
        let rate = bounds::theorem4_drop_factor(g.max_degree(), lambda2);
        let mut loads: Vec<f64> = (0..n).map(|i| ((i * 83 + 19) % 257) as f64).collect();
        let mut exec = ContinuousDiffusion::new(&g).engine();
        for round in 0..50 {
            let s = exec.round(&mut loads).expect("full stats");
            if s.phi_before < 1e-9 {
                break;
            }
            assert!(
                s.relative_drop() >= rate - 1e-9,
                "{name} round {round}: drop {} < λ₂/4δ = {rate}",
                s.relative_drop()
            );
        }
    }
}

#[test]
fn theorem6_bound_and_plateau_hold_on_all_graphs() {
    for (name, g) in standard_small_graphs() {
        let n = g.n();
        let lambda2 = laplacian_lambda2(&g).expect("λ₂");
        let delta = g.max_degree();
        let mut loads = vec![0i64; n];
        loads[0] = 1_000_000 * n as i64;
        let phi0 = potential::phi_discrete(&loads);
        let threshold_hat = bounds::theorem6_threshold_hat(delta, lambda2, n);
        let budget = bounds::theorem6_rounds(delta, lambda2, phi0, n).ceil() as usize + 1;
        let mut exec = DiscreteDiffusion::new(&g).engine();
        let out = run_discrete(&mut exec, &mut loads, threshold_hat, budget, false);
        assert!(
            out.converged,
            "{name}: did not reach the Theorem 6 plateau within {budget} rounds \
             (final Φ̂ = {}, threshold {threshold_hat})",
            out.final_phi_hat
        );
    }
}

#[test]
fn discrete_potential_monotone_on_all_graphs() {
    for (name, g) in standard_small_graphs() {
        let n = g.n();
        let mut loads: Vec<i64> = (0..n).map(|i| ((i * 9973 + 11) % 100_000) as i64).collect();
        let total_before = potential::total_discrete(&loads);
        let mut exec = DiscreteDiffusion::new(&g).engine();
        let mut last = potential::phi_hat(&loads);
        for round in 0..100 {
            let s = exec.round(&mut loads).expect("full stats");
            assert!(
                s.phi_hat_after <= last,
                "{name} round {round}: potential increased {last} -> {}",
                s.phi_hat_after
            );
            last = s.phi_hat_after;
        }
        assert_eq!(
            potential::total_discrete(&loads),
            total_before,
            "{name}: tokens lost"
        );
    }
}

#[test]
fn gm_baseline_slower_than_alg1_in_rounds() {
    // The Section 3 comparison on a representative subset (tori and
    // expanders; statistical so use generous margins).
    use dlb_baselines::{MatchingExchangeContinuous, MatchingKind};
    use dlb_graphs::topology;
    let eps = 1e-3;
    for g in [topology::torus2d(6, 6), topology::hypercube(5)] {
        let n = g.n();
        let mut spike = vec![0.0; n];
        spike[0] = 100.0 * n as f64;

        let mut a_loads = spike.clone();
        let mut alg1 = ContinuousDiffusion::new(&g).engine();
        let a = rounds_to_epsilon(&mut alg1, &mut a_loads, eps, 1_000_000);

        let mut g_loads = spike;
        let mut gm = MatchingExchangeContinuous::new(&g, MatchingKind::Proposal, 9).engine();
        let m = rounds_to_epsilon(&mut gm, &mut g_loads, eps, 1_000_000);

        assert!(a.converged && m.converged);
        // "Constant times faster": the proven constant is 4×, but GM moves
        // half the difference per matched edge (vs 1/(4δ)), so the measured
        // gap narrows on high-degree graphs — require a clear >1.2× margin.
        assert!(
            m.rounds as f64 > 1.2 * a.rounds as f64,
            "dimension exchange ({}) not clearly slower than Algorithm 1 ({})",
            m.rounds,
            a.rounds
        );
    }
}
