//! Failure injection over the dynamic-network machinery: total outages,
//! matching-only degradation, and heavy churn must never lose load, never
//! increase the potential, and must still converge when the sequence is
//! connected on average.

use dlb_core::potential;
use dlb_dynamics::{
    run_dynamic_continuous, run_dynamic_discrete, GraphSequence, IidSubgraphSequence,
    MarkovChurnSequence, MatchingOnlySequence, OutageSequence, StaticSequence,
};
use dlb_graphs::topology;

#[test]
fn outage_rounds_freeze_state_exactly() {
    let ground = topology::hypercube(4);
    // Every round is an outage: nothing may change, ever.
    let mut seq = OutageSequence::new(StaticSequence::new(ground), 1);
    let mut loads: Vec<f64> = (0..16).map(|i| (i * 7 % 13) as f64).collect();
    let before = loads.clone();
    let out = run_dynamic_continuous(&mut seq, &mut loads, f64::NEG_INFINITY, 50, false);
    assert_eq!(out.rounds, 50);
    assert_eq!(loads, before, "outage rounds mutated the state");
}

#[test]
fn heavy_churn_conserves_discrete_tokens_exactly() {
    let ground = topology::torus2d(5, 5);
    let mut seq = MarkovChurnSequence::new(ground, 0.6, 0.2, 99); // mostly down
    let mut loads: Vec<i64> = (0..25).map(|i| ((i * 331) % 10_000) as i64).collect();
    let total = potential::total_discrete(&loads);
    let out = run_dynamic_discrete(&mut seq, &mut loads, 0, 500, false);
    assert!(!out.converged); // target 0 unreachable
    assert_eq!(potential::total_discrete(&loads), total);
}

#[test]
fn intermittent_outages_only_delay_convergence() {
    let ground = topology::hypercube(4);
    let mut loads_clean = vec![0.0; 16];
    loads_clean[0] = 1600.0;
    let target = 1e-6 * potential::phi(&loads_clean);

    let mut clean_seq = StaticSequence::new(ground.clone());
    let clean = run_dynamic_continuous(
        &mut clean_seq,
        &mut loads_clean.clone(),
        target,
        100_000,
        false,
    );

    let mut faulty_seq = OutageSequence::new(StaticSequence::new(ground), 3);
    let faulty = run_dynamic_continuous(
        &mut faulty_seq,
        &mut loads_clean.clone(),
        target,
        100_000,
        false,
    );

    assert!(clean.converged && faulty.converged);
    // With every 3rd round dead, the slowdown is exactly the 3/2 stretch
    // (outage rounds are no-ops). Allow rounding slack.
    assert!(
        faulty.rounds >= clean.rounds && faulty.rounds <= clean.rounds * 3 / 2 + 2,
        "clean {} vs faulty {}",
        clean.rounds,
        faulty.rounds
    );
}

#[test]
fn matching_only_degradation_still_converges() {
    let ground = topology::complete(16);
    let mut seq = MatchingOnlySequence::new(ground, 3);
    let mut loads = vec![0.0; 16];
    loads[0] = 1600.0;
    let target = 1e-4 * potential::phi(&loads);
    let out = run_dynamic_continuous(&mut seq, &mut loads, target, 100_000, false);
    assert!(out.converged, "matching-only sequence failed to converge");
}

#[test]
fn mostly_dead_network_still_converges_eventually() {
    let ground = topology::torus2d(4, 4);
    let mut seq = IidSubgraphSequence::new(ground, 0.15, 5); // 85% of edges dead per round
    let mut loads = vec![0.0; 16];
    loads[0] = 1600.0;
    let target = 1e-4 * potential::phi(&loads);
    let out = run_dynamic_continuous(&mut seq, &mut loads, target, 1_000_000, false);
    assert!(out.converged, "sparse random subgraphs failed to converge");
    // Load conserved through all the churn.
    assert!((loads.iter().sum::<f64>() - 1600.0).abs() < 1e-8);
}

#[test]
fn potential_never_increases_under_any_churn() {
    let ground = topology::de_bruijn(4);
    let models: Vec<Box<dyn GraphSequence>> = vec![
        Box::new(IidSubgraphSequence::new(ground.clone(), 0.4, 1)),
        Box::new(MarkovChurnSequence::new(ground.clone(), 0.3, 0.3, 2)),
        Box::new(MatchingOnlySequence::new(ground.clone(), 3)),
        Box::new(OutageSequence::new(StaticSequence::new(ground), 2)),
    ];
    for mut seq in models {
        let mut loads: Vec<f64> = (0..16).map(|i| ((i * 31) % 47) as f64).collect();
        let mut last = potential::phi(&loads);
        for _ in 0..50 {
            let out = run_dynamic_continuous(seq.as_mut(), &mut loads, f64::NEG_INFINITY, 1, false);
            assert!(
                out.final_phi <= last + 1e-9,
                "{}: potential increased {last} -> {}",
                seq.name(),
                out.final_phi
            );
            last = out.final_phi;
        }
    }
}
