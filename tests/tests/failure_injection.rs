//! Failure injection over the dynamic-network machinery: total outages,
//! matching-only degradation, and heavy churn must never lose load, never
//! increase the potential, and must still converge when the sequence is
//! connected on average.
//!
//! The second half covers the executor fault layer: random seeded
//! [`FaultPlan`]s (worker panics, dropped/duplicated/reordered halo
//! batches, slow workers) on the sharded and message backends must be
//! recovered **exactly** — conservation holds on every intermediate
//! round, Φ never increases across degraded rounds, and once the faults
//! drain the load vector is bit-identical to a fault-free run — plus
//! shard-level fail/recover churn ([`ShardChurnSequence`]), where a
//! failed shard freezes in place and rejoins without losing a bit.

use std::time::Duration;

use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::discrete::DiscreteDiffusion;
use dlb_core::engine::Backend;
use dlb_core::{potential, Engine, FaultKind, FaultPlan};
use dlb_dynamics::{
    run_dynamic_continuous, run_dynamic_discrete, ChurnSchedule, GraphSequence,
    IidSubgraphSequence, MarkovChurnSequence, MatchingOnlySequence, OutageSequence,
    ShardChurnSequence, StaticSequence,
};
use dlb_graphs::{topology, Graph, PartitionSpec};
use proptest::prelude::*;

#[test]
fn outage_rounds_freeze_state_exactly() {
    let ground = topology::hypercube(4);
    // Every round is an outage: nothing may change, ever.
    let mut seq = OutageSequence::new(StaticSequence::new(ground), 1);
    let mut loads: Vec<f64> = (0..16).map(|i| (i * 7 % 13) as f64).collect();
    let before = loads.clone();
    let out = run_dynamic_continuous(&mut seq, &mut loads, f64::NEG_INFINITY, 50, false);
    assert_eq!(out.rounds, 50);
    assert_eq!(loads, before, "outage rounds mutated the state");
}

#[test]
fn heavy_churn_conserves_discrete_tokens_exactly() {
    let ground = topology::torus2d(5, 5);
    let mut seq = MarkovChurnSequence::new(ground, 0.6, 0.2, 99); // mostly down
    let mut loads: Vec<i64> = (0..25).map(|i| ((i * 331) % 10_000) as i64).collect();
    let total = potential::total_discrete(&loads);
    let out = run_dynamic_discrete(&mut seq, &mut loads, 0, 500, false);
    assert!(!out.converged); // target 0 unreachable
    assert_eq!(potential::total_discrete(&loads), total);
}

#[test]
fn intermittent_outages_only_delay_convergence() {
    let ground = topology::hypercube(4);
    let mut loads_clean = vec![0.0; 16];
    loads_clean[0] = 1600.0;
    let target = 1e-6 * potential::phi(&loads_clean);

    let mut clean_seq = StaticSequence::new(ground.clone());
    let clean = run_dynamic_continuous(
        &mut clean_seq,
        &mut loads_clean.clone(),
        target,
        100_000,
        false,
    );

    let mut faulty_seq = OutageSequence::new(StaticSequence::new(ground), 3);
    let faulty = run_dynamic_continuous(
        &mut faulty_seq,
        &mut loads_clean.clone(),
        target,
        100_000,
        false,
    );

    assert!(clean.converged && faulty.converged);
    // With every 3rd round dead, the slowdown is exactly the 3/2 stretch
    // (outage rounds are no-ops). Allow rounding slack.
    assert!(
        faulty.rounds >= clean.rounds && faulty.rounds <= clean.rounds * 3 / 2 + 2,
        "clean {} vs faulty {}",
        clean.rounds,
        faulty.rounds
    );
}

#[test]
fn matching_only_degradation_still_converges() {
    let ground = topology::complete(16);
    let mut seq = MatchingOnlySequence::new(ground, 3);
    let mut loads = vec![0.0; 16];
    loads[0] = 1600.0;
    let target = 1e-4 * potential::phi(&loads);
    let out = run_dynamic_continuous(&mut seq, &mut loads, target, 100_000, false);
    assert!(out.converged, "matching-only sequence failed to converge");
}

#[test]
fn mostly_dead_network_still_converges_eventually() {
    let ground = topology::torus2d(4, 4);
    let mut seq = IidSubgraphSequence::new(ground, 0.15, 5); // 85% of edges dead per round
    let mut loads = vec![0.0; 16];
    loads[0] = 1600.0;
    let target = 1e-4 * potential::phi(&loads);
    let out = run_dynamic_continuous(&mut seq, &mut loads, target, 1_000_000, false);
    assert!(out.converged, "sparse random subgraphs failed to converge");
    // Load conserved through all the churn.
    assert!((loads.iter().sum::<f64>() - 1600.0).abs() < 1e-8);
}

// ---------------------------------------------------------------------------
// Executor faults: seeded FaultPlans on the sharded and message backends
// ---------------------------------------------------------------------------

/// A raw fault event for the strategy: `(round, shard, kind tag)`.
type RawEvent = (u64, usize, u8);

fn plan_from(events: &[RawEvent]) -> FaultPlan {
    let mut plan = FaultPlan::new().with_patience(Duration::from_millis(25));
    for &(round, shard, tag) in events {
        let kind = match tag {
            0 => FaultKind::Panic,
            1 => FaultKind::DropHalo,
            2 => FaultKind::DuplicateHalo,
            3 => FaultKind::ReorderHalo,
            _ => FaultKind::Delay { ms: 1 },
        };
        plan = plan.event(round, shard, kind);
    }
    plan
}

const FAULT_ROUNDS: usize = 6;

fn arb_fault_setup() -> impl Strategy<Value = (Graph, usize, Vec<RawEvent>)> {
    (0u8..3, 8usize..28, 2usize..5).prop_flat_map(|(family, n, shards)| {
        let g = match family {
            0 => topology::cycle(n),
            1 => topology::star(n),
            _ => topology::grid2d(4, n / 4),
        };
        let events =
            proptest::collection::vec((1..FAULT_ROUNDS as u64 + 1, 0..shards, 0u8..5), 0..6);
        (Just(g), Just(shards), events)
    })
}

/// Runs `rounds` rounds of `faulted` against `reference`, asserting the
/// three fault-tolerance invariants after **every** round: exact
/// conservation, Φ no worse than the round before, and bit-identity to
/// the fault-free trajectory (executor faults are recovered exactly, so
/// they never change the numbers — not even mid-recovery).
macro_rules! assert_faults_invisible {
    ($reference:expr, $faulted:expr, $loads:expr, $rounds:expr,
     $total:path, $phi:path, $tol:expr) => {{
        let mut ref_loads = $loads.clone();
        let mut f_loads = $loads.clone();
        let total0 = $total(&f_loads);
        let mut last_phi = $phi(&f_loads);
        for round in 0..$rounds {
            $reference.round(&mut ref_loads);
            $faulted.round(&mut f_loads);
            // Conservation on every intermediate round: exact for tokens,
            // float-rounding noise only for continuous loads.
            let total = $total(&f_loads);
            prop_assert!(
                (total - total0).abs() <= $tol,
                "conservation broke on round {}: {} vs {}",
                round + 1,
                total,
                total0
            );
            let phi = $phi(&f_loads);
            prop_assert!(
                phi <= last_phi + 1e-9 * last_phi.abs().max(1.0),
                "Φ increased across degraded round {}: {} -> {}",
                round + 1,
                last_phi,
                phi
            );
            last_phi = phi;
            for (v, (a, b)) in ref_loads.iter().zip(f_loads.iter()).enumerate() {
                prop_assert_eq!(
                    a,
                    b,
                    "node {} diverged on round {} under injected faults",
                    v,
                    round + 1
                );
            }
        }
    }};
}

fn total_continuous(loads: &[f64]) -> f64 {
    loads.iter().sum()
}

/// Discrete totals as `f64` for the shared macro (token sums are exact,
/// and the conversion loses nothing at these magnitudes).
fn total_tokens(loads: &[i64]) -> f64 {
    potential::total_discrete(loads) as f64
}

fn phi_tokens(loads: &[i64]) -> f64 {
    potential::phi_hat(loads) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_fault_plans_are_invisible_continuous(
        (g, shards, events) in arb_fault_setup(),
        seed in 0u64..1000,
    ) {
        let n = g.n();
        let loads: Vec<f64> = (0..n).map(|i| ((i as u64 * 37 + seed) % 101) as f64).collect();
        let plan = plan_from(&events);
        for backend in [
            Backend::Sharded { partition: PartitionSpec::Range { shards }, threads: 2 },
            Backend::Message { partition: PartitionSpec::Range { shards }, resident: false },
        ] {
            let mut reference = Engine::with_backend(ContinuousDiffusion::new(&g), Backend::Serial);
            let mut faulted = Engine::with_backend(ContinuousDiffusion::new(&g), backend)
                .with_faults(plan.clone());
            assert_faults_invisible!(
                reference, faulted, loads, FAULT_ROUNDS,
                total_continuous, potential::phi, 1e-6
            );
        }
    }

    #[test]
    fn random_fault_plans_are_invisible_discrete(
        (g, shards, events) in arb_fault_setup(),
        seed in 0u64..1000,
    ) {
        let n = g.n();
        let loads: Vec<i64> = (0..n).map(|i| ((i as u64 * 53 + seed) % 997) as i64).collect();
        let plan = plan_from(&events);
        for backend in [
            Backend::Sharded { partition: PartitionSpec::Range { shards }, threads: 2 },
            Backend::Message { partition: PartitionSpec::Range { shards }, resident: false },
        ] {
            let mut reference = Engine::with_backend(DiscreteDiffusion::new(&g), Backend::Serial);
            let mut faulted = Engine::with_backend(DiscreteDiffusion::new(&g), backend)
                .with_faults(plan.clone());
            assert_faults_invisible!(
                reference, faulted, loads, FAULT_ROUNDS,
                total_tokens, phi_tokens, 0.0
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Shard-level fail/recover: churn that degrades the round graph
// ---------------------------------------------------------------------------

#[test]
fn shard_level_fail_recover_freezes_and_restores_exactly() {
    let ground = topology::torus2d(4, 4);
    let owners = PartitionSpec::Range { shards: 4 }
        .build(&ground)
        .owners()
        .to_vec();
    let mut seq = ShardChurnSequence::new(
        StaticSequence::new(ground),
        owners.clone(),
        ChurnSchedule::new(3, 2, 4, 7),
    );
    // A replica of the schedule tells the test which shard (if any) is
    // down on each round, in lockstep with the sequence's own draws.
    let mut replica = ChurnSchedule::new(3, 2, 4, 7);
    let mut loads: Vec<f64> = (0..16).map(|i| ((i * 131) % 97) as f64).collect();
    let total: f64 = loads.iter().sum();
    let mut last_phi = potential::phi(&loads);
    for round in 0..30 {
        let failed = replica.advance();
        let before = loads.clone();
        run_dynamic_continuous(&mut seq, &mut loads, f64::NEG_INFINITY, 1, false);
        if let Some(s) = failed {
            for (v, owner) in owners.iter().enumerate() {
                if *owner as usize == s {
                    assert_eq!(
                        loads[v].to_bits(),
                        before[v].to_bits(),
                        "round {round}: node {v} of failed shard {s} moved load"
                    );
                }
            }
        }
        let phi = potential::phi(&loads);
        assert!(
            phi <= last_phi + 1e-9,
            "round {round}: Φ increased across a fail/recover round"
        );
        last_phi = phi;
        assert!(
            (loads.iter().sum::<f64>() - total).abs() < 1e-9,
            "round {round}: churn lost load"
        );
    }
    assert!(
        replica.failures() >= 5,
        "the schedule never exercised churn"
    );
}

#[test]
fn shard_churn_conserves_discrete_tokens_exactly() {
    let ground = topology::hypercube(4);
    let owners = PartitionSpec::Bfs { shards: 3 }
        .build(&ground)
        .owners()
        .to_vec();
    let mut seq = ShardChurnSequence::new(
        StaticSequence::new(ground),
        owners,
        ChurnSchedule::new(2, 3, 3, 21),
    );
    let mut loads: Vec<i64> = (0..16).map(|i| ((i * 331) % 10_000) as i64).collect();
    let total = potential::total_discrete(&loads);
    let out = run_dynamic_discrete(&mut seq, &mut loads, 0, 200, false);
    assert!(!out.converged);
    assert_eq!(
        potential::total_discrete(&loads),
        total,
        "shard churn lost tokens"
    );
}

#[test]
fn potential_never_increases_under_any_churn() {
    let ground = topology::de_bruijn(4);
    let models: Vec<Box<dyn GraphSequence>> = vec![
        Box::new(IidSubgraphSequence::new(ground.clone(), 0.4, 1)),
        Box::new(MarkovChurnSequence::new(ground.clone(), 0.3, 0.3, 2)),
        Box::new(MatchingOnlySequence::new(ground.clone(), 3)),
        Box::new(OutageSequence::new(StaticSequence::new(ground), 2)),
    ];
    for mut seq in models {
        let mut loads: Vec<f64> = (0..16).map(|i| ((i * 31) % 47) as f64).collect();
        let mut last = potential::phi(&loads);
        for _ in 0..50 {
            let out = run_dynamic_continuous(seq.as_mut(), &mut loads, f64::NEG_INFINITY, 1, false);
            assert!(
                out.final_phi <= last + 1e-9,
                "{}: potential increased {last} -> {}",
                seq.name(),
                out.final_phi
            );
            last = out.final_phi;
        }
    }
}
