//! Cross-crate integration tests for the extension features (E15–E18):
//! heterogeneous capacities, Chebyshev acceleration, the generalized
//! divisor, and the RSW local-divergence machinery.

use dlb_analysis::localdiv::{local_divergence, max_discrete_deviation};
use dlb_baselines::{ChebyshevContinuous, FirstOrderContinuous, SecondOrderContinuous};
use dlb_core::continuous::{ContinuousDiffusion, GeneralizedDiffusion};
use dlb_core::engine::IntoEngine;
use dlb_core::heterogeneous::{
    proportional_target, weighted_phi, HeterogeneousDiffusion, HeterogeneousDiscreteDiffusion,
};
use dlb_core::model::ContinuousBalancer;
use dlb_core::potential;
use dlb_core::runner::rounds_to_epsilon;
use dlb_tests::standard_small_graphs;
use rand::Rng;

#[test]
fn heterogeneous_unit_capacity_matches_alg1_on_every_graph() {
    for (name, g) in standard_small_graphs() {
        let mut r = dlb_tests::rng(0xE15);
        let init: Vec<f64> = (0..g.n()).map(|_| r.gen_range(0.0..1000.0)).collect();
        let mut a = init.clone();
        let mut b = init;
        ContinuousDiffusion::new(&g).engine().round(&mut a);
        HeterogeneousDiffusion::new(&g, vec![1.0; g.n()])
            .engine()
            .round(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{name}: {x} vs {y}");
        }
    }
}

#[test]
fn heterogeneous_proportional_on_every_graph() {
    for (name, g) in standard_small_graphs() {
        let n = g.n();
        let caps: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
        let mut loads = vec![0.0; n];
        loads[0] = 1000.0;
        let mut exec = HeterogeneousDiffusion::new(&g, caps.clone()).engine();
        let phi0 = weighted_phi(&loads, &caps);
        let mut rounds = 0;
        while weighted_phi(&loads, &caps) > 1e-12 * phi0 && rounds < 500_000 {
            exec.round(&mut loads);
            rounds += 1;
        }
        let target = proportional_target(&loads, &caps);
        for (i, (&l, &t)) in loads.iter().zip(&target).enumerate() {
            // Tolerance is relative to the (≈25-unit) targets: the Φ_c
            // stopping rule leaves ≈√(ε·Φ₀/n) per-node residual.
            assert!(
                (l - t).abs() < 1e-2 * t.max(1.0),
                "{name} node {i}: load {l} vs proportional target {t}"
            );
        }
    }
}

#[test]
fn heterogeneous_discrete_plateau_and_conservation() {
    for (name, g) in standard_small_graphs() {
        let n = g.n();
        let caps: Vec<f64> = (0..n).map(|i| if i % 3 == 0 { 4.0 } else { 1.0 }).collect();
        let mut loads = vec![0i64; n];
        loads[0] = 100_000;
        let total = potential::total_discrete(&loads);
        let mut exec = HeterogeneousDiscreteDiffusion::new(&g, caps).engine();
        for _ in 0..3000 {
            exec.round(&mut loads);
        }
        assert_eq!(
            potential::total_discrete(&loads),
            total,
            "{name}: tokens lost"
        );
    }
}

#[test]
fn acceleration_ladder_on_slow_graph() {
    let g = dlb_graphs::topology::cycle(48);
    let race = |b: &mut dyn ContinuousBalancer| {
        let mut loads = vec![0.0; 48];
        loads[0] = 480.0;
        rounds_to_epsilon(b, &mut loads, 1e-6, 2_000_000)
    };
    let alg1 = race(&mut ContinuousDiffusion::new(&g).engine());
    let fos = race(&mut FirstOrderContinuous::new(&g).engine());
    let sos = race(&mut SecondOrderContinuous::with_optimal_beta(&g).engine());
    let cheb = race(&mut ChebyshevContinuous::new(&g).engine());
    assert!(alg1.converged && fos.converged && sos.converged && cheb.converged);
    assert!(fos.rounds < alg1.rounds);
    assert!(sos.rounds < fos.rounds);
    assert!(cheb.rounds <= sos.rounds + 2);
}

#[test]
fn generalized_divisor_sweep_stability() {
    for (name, g) in standard_small_graphs() {
        for k in [2.0f64, 4.0, 16.0] {
            let mut loads: Vec<f64> = (0..g.n()).map(|i| ((i * 13) % 29) as f64).collect();
            let mut exec = GeneralizedDiffusion::new(&g, k).engine();
            let mut last = potential::phi(&loads);
            for _ in 0..30 {
                let s = exec.round(&mut loads).expect("full stats");
                assert!(
                    s.phi_after <= last * (1.0 + 1e-12) + 1e-9,
                    "{name} k={k}: potential increased"
                );
                last = s.phi_after;
            }
        }
    }
}

#[test]
fn local_divergence_dominates_discrete_deviation_on_every_graph() {
    for (name, g) in standard_small_graphs() {
        let psi = local_divergence(&g, 0, 200_000, 1e-9);
        let dev = max_discrete_deviation(&g, 0, 1500);
        assert!(
            dev <= psi.psi + 1e-6,
            "{name}: ℓ∞ deviation {dev} exceeds measured Ψ {}",
            psi.psi
        );
    }
}
