//! Telemetry invariants: arming the recorder must never perturb a run.
//!
//! The observability acceptance for the subsystem: final loads, Φ traces,
//! per-round statistics, communication counters, and fault counters are
//! **bit-identical with telemetry armed vs off on every backend** — the
//! recorder is a pure observer, and `Telemetry::Off` is a no-op branch
//! rather than a dynamic call. The suite also pins the message worker's
//! span protocol: each worker round arrives as a well-nested
//! post-halo → gather-interior → recv-halo → gather-boundary sequence on
//! the worker's own lane, with the coordinator's scatter and plan spans
//! on the engine lane.

use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::engine::{Backend, Engine, StatsMode};
use dlb_core::telemetry::{Phase, Telemetry, ENGINE_LANE};
use dlb_graphs::{topology, Graph, PartitionSpec};
use dlb_workloads::{Scenario, TelemetrySpec};
use proptest::prelude::*;

const SHARDS: usize = 4;

fn backends() -> [(&'static str, Backend); 4] {
    let partition = PartitionSpec::Range { shards: SHARDS };
    [
        ("serial", Backend::Serial),
        ("pool", Backend::Pool { threads: 3 }),
        (
            "sharded",
            Backend::Sharded {
                partition,
                threads: 2,
            },
        ),
        (
            "message",
            Backend::Message {
                partition,
                resident: false,
            },
        ),
    ]
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (0u8..4, 8usize..40).prop_map(|(family, n)| match family {
        0 => topology::cycle(n),
        1 => topology::wheel(n),
        2 => topology::grid2d(4, n / 4),
        _ => topology::binary_tree(n),
    })
}

fn graph_and_loads() -> impl Strategy<Value = (Graph, Vec<f64>, usize)> {
    arb_graph().prop_flat_map(|g| {
        let n = g.n();
        (
            Just(g),
            proptest::collection::vec(0.0f64..10_000.0, n),
            2usize..8,
        )
    })
}

/// Everything a run can observe, collected bit-exactly.
type Observed = (
    Vec<u64>,                      // final loads (bits)
    Vec<u64>,                      // per-round Φ (bits)
    Option<(usize, usize, usize)>, // comm: messages, values, bytes
    (u64, u64, u64),               // fault counters
);

fn observe(g: &Graph, init: &[f64], rounds: usize, backend: Backend, tel: Telemetry) -> Observed {
    let mut engine = Engine::with_backend(ContinuousDiffusion::new(g), backend)
        .with_stats_mode(StatsMode::Full)
        .with_telemetry(tel);
    let mut loads = init.to_vec();
    let mut phis = Vec::with_capacity(rounds);
    let mut comm: Option<(usize, usize, usize)> = None;
    for _ in 0..rounds {
        let s = engine.round(&mut loads).expect("full stats every round");
        phis.push(s.phi_after.to_bits());
        if let Some(c) = engine.comm_metrics() {
            let t = comm.get_or_insert((0, 0, 0));
            t.0 += c.messages;
            t.1 += c.values_sent;
            t.2 += c.halo_bytes;
        }
    }
    let fs = engine.fault_stats();
    (
        loads.iter().map(|x| x.to_bits()).collect(),
        phis,
        comm,
        (fs.faults_injected, fs.recoveries, fs.rehomed_values),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: loads, Φ, stats, comm and fault counters
    /// are bit-identical with telemetry on vs off across all four
    /// backends. The armed ring is deliberately tiny (64 events) so
    /// wraparound — the drop path — is exercised inside the property too.
    #[test]
    fn armed_recording_never_perturbs_any_backend(
        (g, init, rounds) in graph_and_loads()
    ) {
        for (name, backend) in backends() {
            let off = observe(&g, &init, rounds, backend, Telemetry::Off);
            let armed = Telemetry::armed(SHARDS, 64);
            let on = observe(&g, &init, rounds, backend, armed.clone());
            prop_assert_eq!(&off, &on, "telemetry perturbed the {} backend", name);
            let rec = armed.recorder().expect("armed handle keeps its recorder");
            prop_assert!(rec.recorded() > 0, "{}: nothing recorded", name);
        }
    }
}

#[test]
fn message_worker_spans_are_well_nested_per_round() {
    let g = topology::torus2d(8, 8);
    let partition = PartitionSpec::Range { shards: SHARDS };
    let tel = Telemetry::armed(SHARDS, 1 << 12);
    let mut engine = Engine::with_backend(
        ContinuousDiffusion::new(&g),
        Backend::Message {
            partition,
            resident: false,
        },
    )
    .with_telemetry(tel.clone());
    let mut loads = vec![0.0f64; g.n()];
    loads[0] = 6400.0;
    let rounds = 5u64;
    for _ in 0..rounds {
        engine.round(&mut loads);
    }
    let events = tel.recorder().unwrap().events();

    let worker_order = [
        Phase::PostHalo,
        Phase::GatherInterior,
        Phase::RecvHalo,
        Phase::GatherBoundary,
    ];
    for shard in 0..SHARDS as u32 {
        for round in 1..=rounds {
            let lane: Vec<_> = events
                .iter()
                .filter(|e| e.lane == shard && e.round == round)
                .collect();
            let phases: Vec<Phase> = lane.iter().map(|e| e.phase).collect();
            assert_eq!(
                phases, worker_order,
                "shard {shard} round {round}: worker phases out of protocol order"
            );
            // Well-nested at the sequence level: each span begins at or
            // after the previous one ended — the worker's five-phase round
            // is strictly sequential, so its spans never overlap.
            for w in lane.windows(2) {
                assert!(
                    w[1].start_ns >= w[0].start_ns + w[0].dur_ns,
                    "shard {shard} round {round}: {:?} overlaps {:?}",
                    w[1].phase,
                    w[0].phase
                );
            }
        }
    }
    // The coordinator's side of the round rides the engine lane: the
    // result scatter every round, plan builds only in round 1 (the kernel
    // plan and the message exec's shard plan each build once — the graph
    // never changes, so steady-state rounds emit no plan spans), and the
    // stats reduction for every full-stats round.
    let engine_lane: Vec<_> = events.iter().filter(|e| e.lane == ENGINE_LANE).collect();
    let plans: Vec<u64> = engine_lane
        .iter()
        .filter(|e| e.phase == Phase::Plan)
        .map(|e| e.round)
        .collect();
    assert_eq!(
        plans,
        vec![1, 1],
        "plan spans must be the kernel + shard builds of round 1 only"
    );
    for round in 1..=rounds {
        let scatters = engine_lane
            .iter()
            .filter(|e| e.phase == Phase::ScatterOwned && e.round == round)
            .count();
        assert_eq!(scatters, 2, "round {round}: dispatch + result scatter");
        assert_eq!(
            engine_lane
                .iter()
                .filter(|e| e.phase == Phase::Stats && e.round == round)
                .count(),
            1,
            "round {round}: one stats span"
        );
    }
}

#[test]
fn traced_fault_scenario_matches_untraced_run_exactly() {
    // The fault-injected builtin drives worker panics, halo drops and
    // recovery re-homing; arming telemetry must not change one bit of the
    // trajectory or one unit of any counter, while the trace itself gains
    // the fault-recovery phase.
    let sc = Scenario::builtin("churn-shards-message").unwrap();
    let plain = sc.clone().run().unwrap();
    let traced = sc.with_telemetry(TelemetrySpec::default()).run().unwrap();

    let bits = |r: &dlb_workloads::ScenarioReport| -> Vec<u64> {
        r.phi_trace.iter().map(|p| p.to_bits()).collect()
    };
    assert_eq!(
        bits(&plain),
        bits(&traced),
        "Φ trace diverged under tracing"
    );
    assert_eq!(plain.rounds, traced.rounds);
    assert_eq!(plain.final_total.to_bits(), traced.final_total.to_bits());

    let (pf, tf) = (plain.faults.unwrap(), traced.faults.unwrap());
    assert_eq!(pf.faults_injected, tf.faults_injected);
    assert_eq!(pf.recoveries, tf.recoveries);
    assert_eq!(pf.rehomed_values, tf.rehomed_values);

    let (pc, tc) = (plain.comm.unwrap(), traced.comm.unwrap());
    assert_eq!(pc.messages, tc.messages);
    assert_eq!(pc.values_sent, tc.values_sent);
    assert_eq!(pc.halo_bytes, tc.halo_bytes);

    let t = traced.telemetry.expect("traced run reports totals");
    assert!(t.spans > 0);
    assert!(
        t.phases.iter().any(|(p, ..)| p == "fault-recovery"),
        "fault recovery left no spans: {:?}",
        t.phases
    );
    assert!(t.busy_imbalance_mean.is_some(), "shard lanes present");
}
