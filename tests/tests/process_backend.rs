//! Process-backend integration suite: shards as OS processes speaking
//! `dlb-wire/1` over real sockets.
//!
//! (Per-protocol serial ≡ process bit-identity lives in
//! `engine_properties.rs`; codec round-trips and truncation at every
//! byte boundary are property-tested inside `dlb-wire`. This file covers
//! what only a live fleet can: the TCP transport, wire-level comm
//! accounting, worker death mid-round surfacing as a *typed* engine
//! error within bounded time, handshake rejection of malformed peers,
//! and the scenario layer's gating of the new backend.)

use std::time::{Duration, Instant};

use dlb_core::continuous::ContinuousDiffusion;
use dlb_core::engine::{Backend, Engine, EnginePhase};
use dlb_core::Transport;
use dlb_graphs::{topology, PartitionSpec};
use dlb_wire::{read_hello, WireError, WireListener, WireStream, MAGIC};

fn process(shards: usize, transport: Transport) -> Backend {
    Backend::Process {
        partition: PartitionSpec::Bfs { shards },
        transport,
    }
}

fn spike(n: usize) -> Vec<f64> {
    let mut loads = vec![1.0; n];
    loads[0] = n as f64 * 10.0;
    loads
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

#[test]
fn tcp_transport_matches_serial() {
    let g = topology::torus2d(6, 6);
    let mut serial = spike(g.n());
    let mut engine = Engine::serial(ContinuousDiffusion::new(&g));
    for _ in 0..5 {
        engine.round(&mut serial);
    }

    let mut loads = spike(g.n());
    let mut engine = Engine::with_backend(ContinuousDiffusion::new(&g), process(4, Transport::Tcp));
    for _ in 0..5 {
        engine.round(&mut loads);
    }
    assert_eq!(serial, loads, "TCP transport diverged from serial");

    let comm = engine.comm_metrics().expect("process rounds report comm");
    assert!(comm.wire_bytes_out > 0, "no framed bytes counted out");
    assert!(comm.wire_bytes_in > 0, "no framed bytes counted in");
    // The framed streams carry envelopes and round commands on top of
    // the value payloads, so wire bytes must exceed the value volume.
    assert!(
        comm.wire_bytes_out > comm.halo_bytes,
        "wire bytes ({}) should exceed raw halo value bytes ({})",
        comm.wire_bytes_out,
        comm.halo_bytes
    );
}

#[test]
fn worker_pids_exposed_only_on_process_backend() {
    let g = topology::torus2d(4, 4);
    let engine = Engine::with_backend(ContinuousDiffusion::new(&g), process(3, Transport::Unix));
    let pids = engine.process_worker_pids().expect("process backend");
    assert_eq!(pids.len(), 3);
    assert!(pids.iter().all(|&p| p > 0));

    let serial = Engine::serial(ContinuousDiffusion::new(&g));
    assert!(serial.process_worker_pids().is_none());
}

// ---------------------------------------------------------------------------
// Failure model: death is typed and bounded, never a deadlock
// ---------------------------------------------------------------------------

#[test]
fn killed_worker_mid_run_yields_typed_error_not_deadlock() {
    let g = topology::torus2d(6, 6);
    let mut loads = spike(g.n());
    let mut engine =
        Engine::with_backend(ContinuousDiffusion::new(&g), process(4, Transport::Unix));
    engine.try_round(&mut loads).expect("healthy round");

    engine.process_kill_worker(2);
    let t0 = Instant::now();
    let err = engine
        .try_round(&mut loads)
        .expect_err("round over a dead worker must fail");
    // The coordinator notices the closed socket well inside the wire
    // timeout; anything near a minute would be a stall, not detection.
    assert!(
        t0.elapsed() < Duration::from_secs(40),
        "death detection took {:?}",
        t0.elapsed()
    );
    assert_eq!(err.shard, 2);
    assert_eq!(err.phase, EnginePhase::Wire);

    // The worker stays marked dead: subsequent rounds fail fast on the
    // same typed error instead of re-timing-out.
    let t1 = Instant::now();
    let err = engine
        .try_round(&mut loads)
        .expect_err("dead worker stays dead");
    assert_eq!(err.shard, 2);
    assert_eq!(err.phase, EnginePhase::Wire);
    assert!(t1.elapsed() < Duration::from_secs(5));

    // Failed rounds still publish their comm metrics (the bytes spent on
    // the doomed round stay visible).
    assert!(engine.comm_metrics().is_some());
}

// ---------------------------------------------------------------------------
// Handshake rejection: each corruption mode is a distinct typed error
// ---------------------------------------------------------------------------

/// Runs `run_worker` against a scripted fake coordinator and returns the
/// worker's error. The server closure receives the accepted stream
/// *after* the worker's 16-byte hello has been consumed and validated.
fn worker_against(server: impl FnOnce(&mut WireStream) + Send + 'static) -> WireError {
    let listener = WireListener::bind(Transport::Unix).expect("bind");
    let endpoint = listener.endpoint();
    let worker = std::thread::spawn(move || {
        let stream = WireStream::connect(&endpoint).expect("connect");
        dlb_core::run_worker(stream, 0)
    });
    let mut stream = listener.accept().expect("accept");
    let hello = read_hello(&mut stream).expect("worker sends a valid hello");
    assert_eq!(hello.shard, 0);
    server(&mut stream);
    worker
        .join()
        .expect("worker thread")
        .expect_err("worker must reject the scripted coordinator")
}

#[test]
fn handshake_bad_magic_is_typed() {
    use std::io::Write;
    let err = worker_against(|stream| {
        stream
            .write_all(b"NOPE\x01\x00\x00\x00\x01\x00\x00\x00")
            .unwrap();
    });
    match err {
        WireError::BadMagic { found } => assert_eq!(&found, b"NOPE"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn handshake_version_mismatch_is_typed() {
    use std::io::Write;
    let err = worker_against(|stream| {
        let mut ack = [0u8; 12];
        ack[0..4].copy_from_slice(&MAGIC);
        ack[4..8].copy_from_slice(&99u32.to_le_bytes());
        ack[8..12].copy_from_slice(&1u32.to_le_bytes());
        stream.write_all(&ack).unwrap();
    });
    match err {
        WireError::VersionMismatch { ours, theirs } => {
            assert_eq!(ours, dlb_wire::WIRE_VERSION);
            assert_eq!(theirs, 99);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn truncated_frame_is_typed() {
    use std::io::Write;
    let err = worker_against(|stream| {
        dlb_wire::write_hello_ack(stream).unwrap();
        // A frame that declares a 64-byte Plan payload, delivers 3 bytes,
        // and hangs up: the worker must report the truncation with the
        // frame type it died inside.
        let plan_tag = 1u8;
        let mut partial = vec![plan_tag];
        partial.extend_from_slice(&64u32.to_le_bytes());
        partial.extend_from_slice(&[0, 1, 2]);
        stream.write_all(&partial).unwrap();
        let _ = stream.shutdown_write();
    });
    match err {
        WireError::Truncated { frame: Some(tag) } => assert_eq!(tag, 1),
        other => panic!("expected Truncated{{frame: Some(1)}}, got {other:?}"),
    }
}

#[test]
fn eof_between_frames_is_an_orderly_shutdown() {
    // A coordinator that completes the handshake and disappears is a
    // normal exit for the worker (EOF between frames), not an error.
    let listener = WireListener::bind(Transport::Unix).expect("bind");
    let endpoint = listener.endpoint();
    let worker = std::thread::spawn(move || {
        let stream = WireStream::connect(&endpoint).expect("connect");
        dlb_core::run_worker(stream, 7)
    });
    let mut stream = listener.accept().expect("accept");
    let hello = read_hello(&mut stream).expect("hello");
    assert_eq!(hello.shard, 7);
    dlb_wire::write_hello_ack(&mut stream).unwrap();
    drop(stream);
    worker
        .join()
        .expect("worker thread")
        .expect("clean EOF exit");
}

// ---------------------------------------------------------------------------
// Scenario-layer gating
// ---------------------------------------------------------------------------

#[test]
fn scenario_faults_and_process_backend_are_mutually_exclusive() {
    use dlb_workloads::{ExecSpec, FaultsSpec, Scenario};
    let sc = Scenario::builtin("bursty-torus")
        .expect("builtin")
        .with_exec(ExecSpec::Process {
            partition: PartitionSpec::Range { shards: 4 },
            transport: Transport::Unix,
        })
        .with_faults(FaultsSpec::default());
    let err = sc
        .validate()
        .expect_err("faults x process must be rejected");
    assert!(err.contains("process"), "unhelpful error: {err}");
}

#[test]
fn scenario_toml_round_trips_process_backend() {
    use dlb_workloads::{ExecSpec, Scenario};
    for transport in [Transport::Unix, Transport::Tcp] {
        let sc = Scenario::builtin("bursty-torus")
            .expect("builtin")
            .with_exec(ExecSpec::Process {
                partition: PartitionSpec::Bfs { shards: 6 },
                transport,
            });
        let toml = sc.to_toml();
        assert!(toml.contains("backend = \"process\""), "{toml}");
        // The default transport is omitted so legacy files stay
        // byte-stable; tcp must be spelled out.
        assert_eq!(
            toml.contains("transport = \"tcp\""),
            transport == Transport::Tcp,
            "{toml}"
        );
        let back = Scenario::from_spec(&toml).expect("reparse");
        assert_eq!(back.exec, sc.exec, "exec spec did not round-trip");
    }
}

#[test]
fn scenario_builtin_process_runs_and_reports_wire_bytes() {
    use dlb_workloads::{Scenario, ScenarioRunner};
    // Trim the run: equivalence over the full trajectory is covered by
    // the CI matrix; here we only need a live fleet and its accounting.
    let sc = Scenario::builtin("bursty-torus-process")
        .expect("builtin")
        .with_stop(dlb_workloads::StopSpec::Rounds { rounds: 8 });
    let report = ScenarioRunner::new(sc).run().expect("run");
    assert_eq!(report.backend, "process");
    let comm = report.comm.expect("process runs report comm totals");
    assert!(comm.wire_bytes_out > 0);
    assert!(comm.wire_bytes_in > 0);
    let header = report.to_jsonl();
    let header = header.lines().next().unwrap().to_string();
    assert!(header.contains("\"comm_wire_bytes_out\""), "{header}");
    assert!(header.contains("\"comm_wire_bytes_in\""), "{header}");
}
