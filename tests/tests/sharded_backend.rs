//! Sharded-backend integration suite: cross-backend bit-identity through
//! the dynamics drivers and the scenario runner, shard-plan memoization
//! across dynamic graph switches, and the shard metrics' consistency with
//! the partition module's brute-force counts.
//!
//! (Per-protocol serial ≡ pool ≡ sharded identity over random instances
//! lives in `engine_properties.rs`; this file covers the layers above the
//! bare engine.)

use dlb_core::engine::{Backend, Engine, StatsMode};
use dlb_core::potential::phi;
use dlb_dynamics::runner::DynamicContinuousDiffusion;
use dlb_dynamics::{
    run_dynamic_continuous, run_dynamic_continuous_on, run_dynamic_discrete,
    run_dynamic_discrete_on, IidSubgraphSequence, PeriodicSequence, StaticSequence,
};
use dlb_graphs::partition::{Partition, PartitionSpec, ShardPlan};
use dlb_graphs::topology;
use dlb_workloads::{ExecSpec, Scenario, ScenarioRunner};

fn sharded(shards: usize, threads: usize) -> Backend {
    Backend::Sharded {
        partition: PartitionSpec::Bfs { shards },
        threads,
    }
}

#[test]
fn dynamic_continuous_identical_across_backends() {
    let ground = topology::hypercube(5); // n = 32
    let init: Vec<f64> = (0..32).map(|i| ((i * 13 + 5) % 37) as f64).collect();

    let mut serial_seq = IidSubgraphSequence::new(ground.clone(), 0.6, 42);
    let mut serial = init.clone();
    let a = run_dynamic_continuous(&mut serial_seq, &mut serial, f64::NEG_INFINITY, 12, false);

    for backend in [
        Backend::Pool { threads: 3 },
        sharded(4, 2),
        Backend::Sharded {
            partition: PartitionSpec::Range { shards: 6 },
            threads: 3,
        },
    ] {
        let mut seq = IidSubgraphSequence::new(ground.clone(), 0.6, 42);
        let mut loads = init.clone();
        let b =
            run_dynamic_continuous_on(backend, &mut seq, &mut loads, f64::NEG_INFINITY, 12, false);
        assert_eq!(a.rounds, b.rounds, "{backend:?}");
        assert_eq!(
            a.final_phi.to_bits(),
            b.final_phi.to_bits(),
            "{backend:?}: final Φ diverged"
        );
        assert_eq!(serial, loads, "{backend:?}: loads diverged");
    }
}

#[test]
fn dynamic_discrete_identical_across_backends() {
    let ground = topology::torus2d(5, 5);
    let init: Vec<i64> = (0..25).map(|i| ((i * 977 + 31) % 4001) as i64).collect();

    let mut serial_seq = IidSubgraphSequence::new(ground.clone(), 0.7, 7);
    let mut serial = init.clone();
    let a = run_dynamic_discrete(&mut serial_seq, &mut serial, 0, 15, false);

    let mut seq = IidSubgraphSequence::new(ground, 0.7, 7);
    let mut loads = init;
    let b = run_dynamic_discrete_on(sharded(5, 2), &mut seq, &mut loads, 0, 15, false);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.final_phi_hat, b.final_phi_hat);
    assert_eq!(serial, loads);
}

#[test]
fn shard_plans_memoized_per_distinct_graph() {
    // A periodic schedule alternating two graphs must build exactly two
    // plans, no matter how many rounds run — the fingerprint cache
    // re-resolves per round (the version bumps) but only ever builds per
    // distinct graph.
    let a = topology::torus2d(4, 4);
    let b = topology::grid2d(4, 4);
    let mut seq = PeriodicSequence::new(vec![a, b]);
    let mut engine = Engine::sharded(
        DynamicContinuousDiffusion::new(&mut seq),
        PartitionSpec::Bfs { shards: 4 },
        2,
    );
    let mut loads: Vec<f64> = (0..16).map(|i| (i % 5) as f64 * 3.0).collect();
    engine.rounds(&mut loads, 10);
    let metrics = engine.shard_metrics().expect("sharded engine has metrics");
    assert_eq!(metrics.plans_built, 2, "one plan per distinct graph");
    assert_eq!(metrics.shards, 4);
}

#[test]
fn static_sequence_on_sharded_backend_builds_one_plan() {
    let g = topology::torus2d(6, 6);
    let mut seq = StaticSequence::new(g);
    let mut engine = Engine::sharded(
        DynamicContinuousDiffusion::new(&mut seq),
        PartitionSpec::Range { shards: 6 },
        3,
    );
    let mut loads = vec![0.0; 36];
    loads[0] = 360.0;
    engine.rounds(&mut loads, 8);
    let metrics = engine.shard_metrics().expect("metrics");
    // The graph is cloned per round but structurally identical: the
    // fingerprint cache must dedupe it to a single plan.
    assert_eq!(metrics.plans_built, 1);
}

#[test]
fn shard_metrics_match_partition_brute_force() {
    let g = topology::torus2d(8, 8);
    let spec = PartitionSpec::Bfs { shards: 4 };
    let partition = spec.build(&g);
    let plan = ShardPlan::build(&g, &partition);

    let mut seq = StaticSequence::new(g.clone());
    let mut engine = Engine::sharded(DynamicContinuousDiffusion::new(&mut seq), spec, 2);
    let mut loads = vec![0.0; 64];
    loads[0] = 640.0;
    engine.round(&mut loads);
    let metrics = engine.shard_metrics().expect("metrics");
    assert_eq!(metrics.edge_cut, partition.edge_cut(&g));
    assert_eq!(metrics.edge_cut, plan.edge_cut());
    assert_eq!(metrics.halo, plan.halo_total());
    assert_eq!(metrics.interior, plan.interior_total());
    // A 4-way cut of a connected torus must actually cut something, and
    // a reasonable tiling keeps some tile interiors exchange-free (a 4×4
    // torus tile has a 2×2 interior).
    assert!(metrics.edge_cut > 0);
    assert!(metrics.halo > 0);
    assert!(metrics.interior > 0);
}

#[test]
fn bfs_partition_cuts_fewer_torus_edges_than_flat_chunking() {
    // The point of communication-aware sharding: on a 2-D torus, BFS
    // regions approximate square tiles whose perimeter beats the long
    // skinny strips of row-major range chunking... at minimum they must
    // never be *worse* than the strips are on an instance this regular,
    // and both bounds stay far below m.
    let g = topology::torus2d(16, 16);
    let range = Partition::range(g.n(), 8).edge_cut(&g);
    let bfs = Partition::bfs(&g, 8).edge_cut(&g);
    assert!(bfs <= range, "bfs cut {bfs} worse than range cut {range}");
    assert!(bfs < g.m() / 2);
}

#[test]
fn scenario_trajectories_identical_across_exec_overrides() {
    let sc = Scenario::builtin("bursty-torus").unwrap();
    let reference = ScenarioRunner::new(sc.clone()).run().unwrap();
    assert_eq!(reference.backend, "serial");
    for exec in [
        ExecSpec::Pool { threads: 2 },
        ExecSpec::Sharded {
            partition: PartitionSpec::Range { shards: 8 },
            threads: 2,
        },
        ExecSpec::Sharded {
            partition: PartitionSpec::Bfs { shards: 5 },
            threads: 3,
        },
    ] {
        let run = ScenarioRunner::new(sc.clone())
            .with_exec(exec)
            .run()
            .unwrap();
        assert_eq!(run.backend, exec.name());
        assert_eq!(reference.rounds, run.rounds, "{exec:?}");
        let a: Vec<u64> = reference.phi_trace.iter().map(|p| p.to_bits()).collect();
        let b: Vec<u64> = run.phi_trace.iter().map(|p| p.to_bits()).collect();
        assert_eq!(a, b, "{exec:?}: Φ trace diverged");
        assert_eq!(
            reference.final_total.to_bits(),
            run.final_total.to_bits(),
            "{exec:?}"
        );
    }
}

#[test]
fn sharded_builtin_matches_its_serial_twin() {
    // `bursty-torus-sharded` is `bursty-torus` on the sharded backend;
    // everything but the name and backend must agree bit for bit.
    let sharded = Scenario::builtin("bursty-torus-sharded")
        .unwrap()
        .run()
        .unwrap();
    let serial = Scenario::builtin("bursty-torus").unwrap().run().unwrap();
    assert_eq!(sharded.backend, "sharded");
    assert_eq!(sharded.rounds, serial.rounds);
    let a: Vec<u64> = serial.phi_trace.iter().map(|p| p.to_bits()).collect();
    let b: Vec<u64> = sharded.phi_trace.iter().map(|p| p.to_bits()).collect();
    assert_eq!(a, b);
}

#[test]
fn sharded_scenario_files_round_trip_and_run() {
    let sc = Scenario::builtin("bursty-torus-sharded").unwrap();
    let toml = sc.to_toml();
    assert!(toml.contains("backend = \"sharded\""), "{toml}");
    assert!(toml.contains("shards = 8"), "{toml}");
    assert!(toml.contains("partition = \"bfs\""), "{toml}");
    assert_eq!(Scenario::from_toml(&toml).unwrap(), sc);
    assert_eq!(Scenario::from_jsonl(&sc.to_jsonl()).unwrap(), sc);
}

#[test]
fn stats_modes_remain_observers_on_the_sharded_backend() {
    // StatsMode must not perturb sharded trajectories either, and the
    // convergence drivers' on-demand Φ fallback must agree.
    let g = topology::torus2d(6, 6);
    let init: Vec<f64> = (0..36).map(|i| ((i * 7 + 1) % 23) as f64).collect();
    let run = |mode: StatsMode| {
        let mut seq = StaticSequence::new(g.clone());
        let mut engine = Engine::sharded(
            DynamicContinuousDiffusion::new(&mut seq),
            PartitionSpec::Bfs { shards: 4 },
            2,
        )
        .with_stats_mode(mode);
        let mut loads = init.clone();
        engine.rounds(&mut loads, 9);
        let phi_on_demand = engine.potential(&loads);
        (loads, phi_on_demand)
    };
    let (full, phi_full) = run(StatsMode::Full);
    for mode in [StatsMode::Off, StatsMode::PhiOnly, StatsMode::EveryK(4)] {
        let (loads, phi_mode) = run(mode);
        assert_eq!(full, loads, "{mode:?}");
        assert_eq!(phi_full.to_bits(), phi_mode.to_bits(), "{mode:?}");
    }
    // Sanity: the run actually balanced something.
    assert!(phi_full < phi(&init));
}
