#![deny(rustdoc::broken_intra_doc_links)]

//! Shared fixtures for the workspace integration tests (see `tests/*.rs`).
//!
//! The actual test suites live in this package's `tests/` directory; this
//! library only hosts helpers reused across them.

use dlb_graphs::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RNG for integration tests.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A small assortment of connected graphs spanning degree/expansion regimes,
/// used by many integration suites.
pub fn standard_small_graphs() -> Vec<(&'static str, Graph)> {
    use dlb_graphs::topology;
    let mut r = rng(0xD1FF);
    vec![
        ("path16", topology::path(16)),
        ("cycle16", topology::cycle(16)),
        ("grid4x4", topology::grid2d(4, 4)),
        ("torus4x4", topology::torus2d(4, 4)),
        ("hypercube4", topology::hypercube(4)),
        ("debruijn4", topology::de_bruijn(4)),
        ("complete12", topology::complete(12)),
        ("star12", topology::star(12)),
        ("tree15", topology::binary_tree(15)),
        ("rreg4_16", topology::random_regular(16, 4, &mut r)),
        ("barbell6", topology::barbell(6)),
        ("petersen", topology::petersen()),
    ]
}
